"""Crash-tolerant sharded multi-process serving with batch coalescing.

The router/replica architecture the ROADMAP's serving item calls for:
one :class:`ClusterService` **router** owns admission control, retained
records, and the response lifecycle, and fans scoring work out to N
**replica processes** (stdlib ``multiprocessing``, spawn context).  Each
replica loads the pickled frozen tier-1 scorer (and, when configured, the
read-only mmap embedding store) once at startup and then serves fused
score batches, shard queries, and incremental index adds from its work
queue.

Request lifecycle::

    submit(pairs, deadline_s)
        │  capacity full / closed ──► ServiceOverloaded / ServiceClosed
        ▼                             (explicit rejection, counted)
    coalescing buffer ── Δt or batch-size flush ──► fused batches
        ▼                                             │
    dispatcher ── consistent choice of live replica ──┤
        ▼                                             ▼
    replica process (one fused tier-1 forward)   tier-2/3 fallback
        ▼                                        (no live replica /
    collector ──► MatchResponse                   breaker open / deadline)

**Batch coalescing and bitwise parity.**  Compatible pairs from different
requests are held up to ``coalesce_window`` seconds (or ``coalesce_pairs``
pairs) and scored in one fused tier-1 forward.  Scores stay *bitwise
identical* to the offline single-request path because the store-backed
scorer pads every forward chunk to one fixed ``pad_width``
(:class:`~repro.store.scorer.StoreBackedScorer`): with all blocks inside
the fixed width, each pair's score is independent of which other pairs
share the batch, so neither fusion nor chunk boundaries can perturb a
bit.  Requests containing a pair wider than ``pad_width`` are never fused
— they are dispatched solo, where the same scorer reproduces the offline
chunking exactly.  Use :func:`pad_width_for` to pick the tightest width
for a record pool.

**Crash tolerance.**  Replicas heartbeat from their serving loop; the
supervisor declares a replica dead when its process exits (``kill -9``)
and wedged when beats stop, then pops the replica's in-flight batches
(ownership transfer — a late result from the old incarnation is dropped
as stale), fails them over to a surviving replica (or the local tier-2/3
cascade once ``max_redispatch`` is exhausted or every breaker is open),
and respawns the replica with its index shard rebuilt from the router's
retained records.  Every replica incarnation gets a *fresh* work queue,
so work left in a dead incarnation's queue can never be double-processed.
Conservation (``answered + rejected == submitted``) holds across the
crash: a batch is always either completed by exactly one owner or
explicitly failed over, and ``close()`` drains every admitted request
before teardown.

**Sharded blocking.**  :meth:`ClusterService.index_record` routes each
retained record to the replica a consistent-hash ring assigns it;
:meth:`ClusterService.submit_query` broadcasts the query to every live
shard and merges the candidate sets deterministically (ascending global
index, capped at ``k``).  Dead shards are counted, not waited on.

Fault sites: ``serving.replica`` fires inside the replica scoring path
(``transient`` absorbed by in-replica retry, ``stall`` sleeps, ``corrupt``
mangles the response so router-side validation catches it, ``kill`` makes
the replica ``os._exit`` like a SIGKILL); ``serving.dispatch`` fires in
the router's dispatch path.  New locks rank between ``serving.submit``
and ``serving.blocker`` in ``LOCK_HIERARCHY`` (see docs/ANALYSIS.md).
"""

from __future__ import annotations

import bisect
import contextlib
import dataclasses
import hashlib
import multiprocessing
import os
import queue
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import get_default_dtype, set_default_dtype
from repro.config import get_scale, set_scale
from repro.data.schema import Entity, EntityPair
from repro.perf.profiler import wall_clock
from repro.reliability.counters import COUNTERS
from repro.reliability.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    TrainingKilled,
    fault_point,
    inject,
)
from repro.reliability.locks import named_lock
from repro.reliability.retry import RetryPolicy, retry_with_backoff
from repro.serving.breaker import OPEN, CircuitBreaker
from repro.serving.service import (
    MatchResponse,
    PendingResponse,
    ServiceClosed,
    ServiceOverloaded,
    _ServiceCounters,
)
from repro.serving.tiers import DegradationCascade, ScoringTier
from repro.store.scorer import StoreBackedScorer

#: Widest fixed pad width the pair comparator supports: it concatenates
#: the left and right WpC blocks plus one separator through the frozen LM
#: encoder, so ``2 * pad_width + 1 <= max_len (128)``.
MAX_PAD_WIDTH = 63


# ======================================================================
# Pad-width selection (the parity foundation of coalescing)
# ======================================================================
def _base_matcher(matcher):
    return matcher.matcher if isinstance(matcher, StoreBackedScorer) else matcher


def pair_width(matcher, pair: EntityPair) -> int:
    """Exact padded token width scoring ``pair`` needs (0 for encoder-less
    matchers, whose scores carry no padding and always coalesce)."""
    base = _base_matcher(matcher)
    encoder = getattr(base, "_encoder", None)
    if encoder is None:
        return 0
    slots = base._num_attributes
    return max(len(encoder.attribute_ids(entity, slot))
               for entity in (pair.left, pair.right)
               for slot in range(slots))


def pad_width_for(matcher, pairs: Sequence[EntityPair]) -> int:
    """The tightest fixed pad width covering ``pairs`` (capped so the
    comparator's joined sequence still fits the LM's ``max_len``)."""
    widest = max((pair_width(matcher, pair) for pair in pairs), default=0)
    return min(widest, MAX_PAD_WIDTH)


# ======================================================================
# Configuration
# ======================================================================
@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Tuning knobs for :class:`ClusterService` (see docs/SERVING.md)."""

    #: Number of replica processes (also the shard count of the ring).
    replicas: int = 2
    #: Bound on concurrently admitted requests; beyond it submits reject.
    queue_capacity: int = 64
    #: Δt — how long compatible pairs wait for batch-mates before a flush.
    coalesce_window: float = 0.005
    #: Flush as soon as this many pairs are buffered (also the fused batch
    #: size cap, i.e. the replica's one-forward amortization target).
    coalesce_pairs: int = 32
    #: Fixed tier-1 pad width; ``None`` falls back to :data:`MAX_PAD_WIDTH`
    #: (always correct, wastes head FLOPs — pass :func:`pad_width_for` of
    #: the serving pool instead).  Requests wider than this dispatch solo.
    pad_width: Optional[int] = None
    #: Replica idle-loop beat period (the work queue poll timeout).
    heartbeat_interval: float = 0.05
    #: Beats may go silent this long before a replica counts as wedged.
    heartbeat_timeout: float = 5.0
    #: Wedge grace for a spawning replica (import + unpickle are slow).
    spawn_grace: float = 120.0
    #: Supervisor scan period.
    supervisor_interval: float = 0.05
    #: Batch failovers before giving up on tier 1 and answering locally.
    max_redispatch: int = 2
    #: Respawn budget per replica slot.
    max_respawns: int = 8
    #: Per-replica circuit breaker (crashes and errors count as failures).
    breaker_failures: int = 3
    breaker_reset: float = 0.25
    #: In-replica retry policy for transient tier-1 faults.
    retry: RetryPolicy = RetryPolicy(retries=2, base_delay=0.005,
                                     max_delay=0.05)
    #: Sleep applied when the ``stall`` fault kind fires at a cluster site.
    stall_seconds: float = 0.05
    #: Per-request deadline unless ``submit`` passes an explicit one.
    default_deadline: Optional[float] = None
    #: How long a broadcast shard query waits for stragglers.
    query_timeout: float = 10.0
    #: ``close()`` waits this long for in-flight requests to drain before
    #: force-answering the leftovers (still conserved, stamped "error").
    drain_timeout: float = 60.0
    #: Deterministic fault specs shipped to every replica (each replica
    #: process builds its own plan; ``serving.replica`` is the site).
    replica_faults: Tuple[FaultSpec, ...] = ()
    #: ``multiprocessing`` start method; spawn keeps children free of
    #: inherited router locks/threads (fork could freeze a child whose
    #: heap snapshot caught a lock mid-acquisition).
    start_method: str = "spawn"


# ======================================================================
# Consistent-hash sharding
# ======================================================================
class ConsistentHashRing:
    """Deterministic uid -> replica-slot assignment with virtual nodes.

    blake2b-based so every process (router, respawned replicas, tests)
    computes identical ownership without sharing state.
    """

    def __init__(self, replica_ids: Sequence[int], vnodes: int = 32):
        self.replica_ids = tuple(replica_ids)
        if not self.replica_ids:
            raise ValueError("ring needs at least one replica id")
        points = sorted(
            (self._hash(f"replica-{rid}:vnode-{v}"), rid)
            for rid in self.replica_ids for v in range(vnodes))
        self._keys = [point for point, _ in points]
        self._owners = [rid for _, rid in points]

    @staticmethod
    def _hash(key: object) -> int:
        digest = hashlib.blake2b(str(key).encode("utf-8"),
                                 digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def owner(self, key: object) -> int:
        at = bisect.bisect_right(self._keys, self._hash(key))
        if at == len(self._keys):
            at = 0
        return self._owners[at]


# ======================================================================
# Replica process side
# ======================================================================
@dataclasses.dataclass
class _MemoStats:
    hits: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class _MemoStore:
    """Per-process memo of encoded records, when no on-disk store exists.

    ``encode_record`` is the single encoding path for both the embedding
    store and the live fallback, so serving memoized records is bitwise
    identical to re-encoding them — the memo only removes repeat work.
    Single-threaded by design: each replica's serving loop (and the
    router's offline parity reference) is one thread.
    """

    dtype = "float32(memo)"

    def __init__(self, matcher):
        self._matcher = matcher
        self._memo: Dict[Entity, object] = {}

    def get(self, entity: Entity):
        from repro.store.embedstore import encode_record

        record = self._memo.get(entity)
        if record is None:
            record = encode_record(
                self._matcher._network, self._matcher._encoder, entity,
                self._matcher._num_attributes)
            self._memo[entity] = record
        return record

    @property
    def stats(self) -> _MemoStats:
        return _MemoStats(hits=len(self._memo))


@dataclasses.dataclass(frozen=True)
class _ReplicaPayload:
    """Everything a replica needs, picklable for the spawn boundary.

    ``FaultPlan`` holds a lock and cannot cross the boundary — replicas
    receive the frozen specs and build their own plan, so fault schedules
    stay deterministic per process.

    ``default_dtype`` and ``scale`` carry the router process's ambient
    numeric state across the spawn boundary: tensor construction casts to
    the *process-global* default dtype, so a fresh interpreter left at its
    own default would score the same model in a different precision than
    the router's offline parity reference.
    """

    scorer: object
    retry: RetryPolicy
    stall_seconds: float
    heartbeat_interval: float
    fault_specs: Tuple[FaultSpec, ...] = ()
    blocker_factory: Optional[object] = None
    shard: Tuple[Tuple[int, Entity], ...] = ()
    store_path: Optional[str] = None
    default_dtype: object = None
    scale: object = None


def _replica_main(replica_id: int, incarnation: int,
                  payload: _ReplicaPayload, work_q, response_q) -> None:
    """Replica serving loop (runs in a spawned child process).

    Beats are posted from this loop only — after each work item and on
    every idle poll timeout — so a heartbeat proves the loop is live, and
    a replica wedged inside a forward goes silent until the supervisor
    kills it.  The injected ``kill`` fault exits with ``os._exit`` so the
    router sees exactly what a SIGKILL looks like.
    """
    if payload.default_dtype is not None:
        set_default_dtype(payload.default_dtype)
    if payload.scale is not None:
        set_scale(payload.scale)
    scorer = payload.scorer
    if isinstance(scorer, StoreBackedScorer):
        if payload.store_path is not None:
            from repro.store.embedstore import EmbeddingStore

            store = EmbeddingStore.open(payload.store_path)
            network = getattr(scorer.matcher, "_network", None)
            if network is not None:
                store.bind(network)
            scorer.store = store
        else:
            scorer.store = _MemoStore(scorer.matcher)

    blocker = None
    shard_gidx: List[int] = []
    indexed = set()
    if payload.blocker_factory is not None:
        blocker = payload.blocker_factory()
        blocker.fit([record for _, record in payload.shard])
        shard_gidx = [gidx for gidx, _ in payload.shard]
        indexed = set(shard_gidx)

    plan = FaultPlan(payload.fault_specs) if payload.fault_specs else None
    plan_ctx = inject(plan) if plan is not None else contextlib.nullcontext()
    with plan_ctx:
        response_q.put(("ready", replica_id, incarnation, len(shard_gidx)))
        served = 0
        while True:
            try:
                message = work_q.get(timeout=payload.heartbeat_interval)
            except queue.Empty:
                message = None
            if message is None:
                response_q.put(("beat", replica_id, incarnation, served))
                continue
            kind = message[0]
            if kind == "stop":
                fired = dict(plan.triggered) if plan is not None else {}
                response_q.put(("stopped", replica_id, incarnation, fired))
                return
            try:
                if kind == "score":
                    _, batch_id, pairs = message

                    def attempt(batch_id=batch_id, pairs=pairs):
                        fault = fault_point("serving.replica",
                                            replica=replica_id,
                                            batch=batch_id)
                        if fault == "stall":
                            time.sleep(payload.stall_seconds)
                        values = [float(v) for v in scorer.scores(list(pairs))]
                        if fault == "corrupt":
                            # Mangled response payload: the *router-side*
                            # validation (length + finiteness) must catch
                            # it and fail the batch over.
                            values = values[:-1]
                        return values

                    values = retry_with_backoff(attempt, policy=payload.retry)
                    response_q.put(("result", replica_id, incarnation,
                                    batch_id, values))
                elif kind == "index":
                    _, gidx, record = message
                    if blocker is not None and gidx not in indexed:
                        blocker.add(record)
                        shard_gidx.append(gidx)
                        indexed.add(gidx)
                elif kind == "query":
                    _, qid, record, k = message
                    local = (blocker.candidates(record, k=k)
                             if blocker is not None else [])
                    response_q.put(("cands", replica_id, incarnation, qid,
                                    [shard_gidx[at] for at in local]))
            except TrainingKilled:
                # The injected-kill contract: die the way a SIGKILL/OOM
                # would — no cleanup, no goodbye message.
                os._exit(1)
            except BaseException as exc:
                batch_id = message[1] if kind == "score" else None
                response_q.put(("error", replica_id, incarnation, batch_id,
                                f"{type(exc).__name__}: {exc}"))
            served += 1
            response_q.put(("beat", replica_id, incarnation, served))


# ======================================================================
# Router-side bookkeeping records (plain holders; every mutation happens
# under the ClusterService lock noted on the owning table)
# ======================================================================
@dataclasses.dataclass
class _ClusterRequest:
    """One admitted request; segment state guarded by serving.cluster.submit."""

    id: int
    pairs: Tuple[EntityPair, ...]
    admitted_at: float
    deadline_at: Optional[float]
    pending: PendingResponse
    scores: np.ndarray
    labels: np.ndarray
    fusible: bool = True
    filled: int = 0
    worst_level: int = 0
    tier_name: Optional[str] = None
    degrade_reason: Optional[str] = None
    redispatched: bool = False
    error: Optional[str] = None


@dataclasses.dataclass
class _Batch:
    """One dispatch unit: slices of one or more requests, fused in order."""

    id: int
    slices: Tuple[Tuple[_ClusterRequest, int, int], ...]
    pairs: Tuple[EntityPair, ...]
    owner: Optional[Tuple[int, int]] = None   # (replica id, incarnation)
    attempts: int = 0
    redispatched: bool = False


class _Replica:
    """Router-side view of one replica incarnation (serving.cluster.replicas).

    Every incarnation owns a *private* response queue and collector
    thread.  This is a crash-tolerance decision, not a convenience: a
    ``multiprocessing.Queue`` shares one cross-process write lock among
    its writers, so a replica SIGKILLed mid-``put`` on a shared queue
    would strand the lock and wedge every *healthy* writer too.  With
    per-incarnation queues, a kill can only ever poison the victim's own
    channel — the worst case is that one collector thread blocks on a
    half-written frame, and the supervisor has already failed the
    victim's work over by then.
    """

    __slots__ = ("rid", "proc", "work_q", "resp_q", "collector",
                 "incarnation", "alive", "ready",
                 "last_beat", "beats", "respawns", "breaker", "shard_size",
                 "faults_fired")

    def __init__(self, rid: int, proc, work_q, resp_q, incarnation: int,
                 breaker: CircuitBreaker, shard_size: int):
        self.rid = rid
        self.proc = proc
        self.work_q = work_q
        self.resp_q = resp_q
        self.collector: Optional[threading.Thread] = None
        self.incarnation = incarnation
        self.alive = True
        self.ready = False
        self.last_beat = 0.0
        self.beats = 0
        self.respawns = 0
        self.breaker = breaker
        self.shard_size = shard_size
        self.faults_fired: Dict[str, int] = {}


@dataclasses.dataclass
class _Query:
    """One broadcast shard query (guarded by serving.cluster.replicas)."""

    qid: int
    expected: frozenset
    results: Dict[int, List[int]]
    event: threading.Event


class _ClusterCounters(_ServiceCounters):
    """Conservation bookkeeping plus atomic bounded admission."""

    def try_admit(self, capacity: int) -> bool:
        """Count a submission and admit it iff in-flight stays in bounds.

        One atomic step so the capacity check can never race another
        submit between read and reject (the submission *and* its
        rejection land in the same snapshot either way).
        """
        with self._lock:
            self.submitted += 1
            if self.submitted - self.answered - self.rejected > capacity:
                self.rejected += 1
                return False
            return True


# ======================================================================
# The router
# ======================================================================
class ClusterService:
    """Router over N replica processes: admission, coalescing, failover.

    Use as a context manager (``with ClusterService(...) as svc``) or call
    :meth:`start` / :meth:`close` explicitly.  The ``submit`` /
    ``submit_query`` / ``index_record`` / ``stats`` surface mirrors
    :class:`~repro.serving.service.InferenceService`, so soak harnesses
    and clients drive either interchangeably.

    Thread/lock layout (ranks in ``LOCK_HIERARCHY``): admission,
    lifecycle, and per-request segment state under
    ``serving.cluster.submit``; the retained record table under
    ``serving.cluster.records``; the coalescing buffer under
    ``serving.cluster.coalesce``; the replica table, in-flight batch
    table, and open queries under ``serving.cluster.replicas``.  Blocking
    work (queue puts/gets, process management, fault points, tier
    forwards) always runs outside these locks.
    """

    def __init__(self, cascade: DegradationCascade,
                 config: ClusterConfig = ClusterConfig(),
                 blocker_factory=None,
                 store_path: Optional[str] = None):
        if config.replicas < 1:
            raise ValueError("a cluster needs at least one replica")
        self.cascade = cascade
        self.config = config
        #: Factory building one *empty* shard blocker per replica; must be
        #: picklable (a module-level class or ``functools.partial``).
        self.blocker_factory = blocker_factory
        self.store_path = store_path

        matcher = cascade.tier1.matcher
        if not isinstance(matcher, StoreBackedScorer) \
                and getattr(matcher, "_network", None) is not None:
            matcher = StoreBackedScorer(matcher)
            cascade.tier1.matcher = matcher
        if isinstance(matcher, StoreBackedScorer):
            pad = MAX_PAD_WIDTH if config.pad_width is None \
                else min(config.pad_width, MAX_PAD_WIDTH)
            matcher.pad_width = pad
            # One fused forward per dispatched batch: chunking wider than
            # the fusion cap means a coalesced batch never re-splits (and
            # with the fixed pad width, chunk boundaries cannot move a
            # bit anyway).
            base_batch = matcher.batch_size \
                or getattr(matcher.matcher.scale, "batch_size", 32)
            matcher.batch_size = max(base_batch, config.coalesce_pairs)
            if matcher.store is None and store_path is None:
                matcher.store = _MemoStore(matcher.matcher)
            self.pad_width = pad
        else:
            # Encoder-less tier 1 (feature/stub matchers): scores carry no
            # padding, so every request is fusible by construction.
            self.pad_width = config.pad_width or 0

        self.counters = _ClusterCounters()
        self._submit_lock = named_lock("serving.cluster.submit")
        self._records_lock = named_lock("serving.cluster.records")
        self._coalesce_lock = named_lock("serving.cluster.coalesce")
        self._replicas_lock = named_lock("serving.cluster.replicas")

        self._closed = False
        self._started = False
        self._drained = False
        self._next_request_id = 0
        self._next_batch_id = 0
        self._next_query_id = 0
        self._requests: Dict[int, _ClusterRequest] = {}

        self._records: List[Entity] = []

        self._pending: List[_ClusterRequest] = []
        self._pending_pairs = 0
        self._oldest_pending: Optional[float] = None
        self._flushes = 0
        self._fused_batches = 0
        self._solo_batches = 0
        self._fused_pairs = 0

        self._replicas: Dict[int, _Replica] = {}
        self._inflight: Dict[int, _Batch] = {}
        self._queries: Dict[int, _Query] = {}
        self._stale_results = 0
        self._replica_errors = 0
        self._dispatch_faults = 0
        self._query_shard_misses = 0

        self._flush_event = threading.Event()
        self._stop_event = threading.Event()
        self._threads: List[threading.Thread] = []
        self._fallback_q: "queue.Queue" = queue.Queue()

        self._ctx = multiprocessing.get_context(config.start_method)
        self._ring = ConsistentHashRing(range(config.replicas))
        self._payload = self._build_payload()

    # -- payload --------------------------------------------------------
    def _build_payload(self) -> _ReplicaPayload:
        scorer = self.cascade.tier1.matcher
        ship = scorer
        if isinstance(scorer, StoreBackedScorer):
            # Ship a store-less clone: the memo / mmap store is rebuilt
            # inside each replica process (mmaps and memo dicts must not
            # ride through pickle).
            ship = StoreBackedScorer(scorer.matcher, store=None,
                                     batch_size=scorer.batch_size,
                                     pad_width=scorer.pad_width)
        return _ReplicaPayload(
            scorer=ship,
            retry=self.config.retry,
            stall_seconds=self.config.stall_seconds,
            heartbeat_interval=self.config.heartbeat_interval,
            fault_specs=tuple(self.config.replica_faults),
            blocker_factory=self.blocker_factory,
            shard=(),
            store_path=self.store_path,
            default_dtype=get_default_dtype(),
            scale=get_scale(),
        )

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ClusterService":
        with self._submit_lock:
            if self._started:
                return self
            self._started = True
        for rid in range(self.config.replicas):
            replica = self._spawn_replica(rid, incarnation=0, shard=())
            with self._replicas_lock:
                self._replicas[rid] = replica
        threads = [
            threading.Thread(target=self._dispatcher_loop,
                             name="cluster-dispatcher", daemon=True),
            threading.Thread(target=self._supervisor_loop,
                             name="cluster-supervisor", daemon=True),
            threading.Thread(target=self._fallback_loop,
                             name="cluster-fallback", daemon=True),
        ]
        with self._submit_lock:
            self._threads = threads
        for thread in threads:
            thread.start()
        return self

    def wait_ready(self, timeout: float = 120.0) -> bool:
        """Block until every replica finished loading (or ``timeout``)."""
        deadline = wall_clock() + timeout
        while wall_clock() < deadline:
            with self._replicas_lock:
                ready = all(replica.ready or not replica.alive
                            for replica in self._replicas.values()) \
                    and any(replica.alive
                            for replica in self._replicas.values())
            if ready:
                return True
            time.sleep(0.01)
        return False

    def close(self) -> None:
        """Stop admitting, drain every accepted request, tear down.

        Draining runs with the dispatcher/supervisor/fallback threads,
        the per-replica collectors, and the replicas still live, so
        in-flight work finishes
        through the normal paths — including respawns, if a replica dies
        during shutdown.  Anything still unanswered after
        ``drain_timeout`` is force-answered with an explicit error
        response; nothing is ever silently dropped.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            threads = self._threads
        self._flush_event.set()
        deadline = wall_clock() + self.config.drain_timeout
        while wall_clock() < deadline:
            if self.counters.snapshot()["in_flight"] == 0:
                break
            # Re-signal every poll: a submit that raced the close can land
            # its pairs in the coalesce buffer *after* the dispatcher
            # consumed the wake above.  With a long coalesce window the
            # dispatcher would then sleep out the window while the drain
            # spins, and the buffered pairs would be force-answered as
            # errors at the drain timeout instead of flushed.
            self._flush_event.set()
            time.sleep(0.005)
        if self.counters.snapshot()["in_flight"]:
            self._force_answer_remaining()
        self._stop_event.set()
        self._flush_event.set()
        for thread in threads:
            thread.join(timeout=30.0)
        self._stop_replicas()
        with self._submit_lock:
            self._threads = []
            self._drained = True

    def __enter__(self) -> "ClusterService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _force_answer_remaining(self) -> None:
        """Drain-timeout floor: answer every leftover request explicitly."""
        with self._coalesce_lock:
            self._pending = []
            self._pending_pairs = 0
            self._oldest_pending = None
        with self._replicas_lock:
            self._inflight.clear()
        with self._submit_lock:
            leftovers = [request for request in self._requests.values()
                         if not request.pending.done()]
        finished = wall_clock()
        for request in leftovers:
            response = MatchResponse(
                request_id=request.id, status="error", tier=None,
                tier_level=None, scores=None, labels=None, degraded=True,
                degrade_reason="fault", latency=finished - request.admitted_at,
                error="drain timeout: request abandoned by all replicas",
                redispatched=request.redispatched)
            self._finish(request, response)

    def _stop_replicas(self) -> None:
        """Graceful replica teardown.

        Each incarnation's collector thread is still draining its private
        response queue here, so the 'stopped' goodbyes — carrying the
        replica's fired-fault tallies — land through the normal path.
        After the processes are reaped, flipping ``alive`` is the floor
        that lets every collector exit even for incarnations killed
        without a goodbye.
        """
        with self._replicas_lock:
            replicas = list(self._replicas.values())
        for replica in replicas:
            if replica.proc.is_alive():
                with contextlib.suppress(ValueError, OSError):
                    replica.work_q.put(("stop",))
        for replica in replicas:
            replica.proc.join(timeout=5.0)
            if replica.proc.is_alive():
                replica.proc.terminate()
                replica.proc.join(timeout=2.0)
            if replica.proc.is_alive():
                replica.proc.kill()
                replica.proc.join(timeout=2.0)
        with self._replicas_lock:
            for replica in replicas:
                replica.alive = False
        for replica in replicas:
            if replica.collector is not None:
                replica.collector.join(timeout=10.0)
            with contextlib.suppress(ValueError, OSError):
                replica.work_q.cancel_join_thread()
                replica.work_q.close()
            with contextlib.suppress(ValueError, OSError):
                replica.resp_q.cancel_join_thread()
                replica.resp_q.close()

    # -- replica process management ------------------------------------
    def _spawn_replica(self, rid: int, incarnation: int,
                       shard: Tuple[Tuple[int, Entity], ...]) -> _Replica:
        """Start one replica incarnation with *fresh* private queues.

        Abandoning the previous incarnation's work queue is what makes
        redispatch safe: work stranded in a dead incarnation's queue can
        never be picked up again, so a batch has exactly one live owner.
        The response queue (and its collector thread) are equally
        per-incarnation: a SIGKILLed child can die holding its response
        queue's shared writer lock, and a shared channel would wedge
        every healthy replica behind that corpse.  Private channels turn
        a poisoned queue into the dead owner's private problem — and the
        dead owner's work has already been failed over.
        """
        work_q = self._ctx.Queue()
        resp_q = self._ctx.Queue()
        payload = dataclasses.replace(self._payload, shard=tuple(shard))
        proc = self._ctx.Process(
            target=_replica_main,
            args=(rid, incarnation, payload, work_q, resp_q),
            name=f"repro-replica-{rid}", daemon=True)
        proc.start()
        breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            reset_timeout=self.config.breaker_reset,
            name=f"replica-{rid}")
        replica = _Replica(rid=rid, proc=proc, work_q=work_q,
                           resp_q=resp_q, incarnation=incarnation,
                           breaker=breaker, shard_size=len(shard))
        replica.last_beat = wall_clock()
        replica.collector = threading.Thread(
            target=self._collector_loop, args=(replica,),
            name=f"cluster-collector-{rid}.{incarnation}", daemon=True)
        replica.collector.start()
        return replica

    def replica_pid(self, rid: int) -> Optional[int]:
        """The current incarnation's OS pid (chaos tests SIGKILL it)."""
        with self._replicas_lock:
            replica = self._replicas.get(rid)
            return replica.proc.pid if replica is not None else None

    def _shard_snapshot(self, rid: int) -> Tuple[Tuple[Tuple[int, Entity], ...], int]:
        """(shard records owned by ``rid``, retained-record watermark)."""
        with self._records_lock:
            watermark = len(self._records)
            shard = tuple(
                (gidx, record)
                for gidx, record in enumerate(self._records)
                if self._ring.owner(record.uid) == rid)
        return shard, watermark

    def _handle_replica_death(self, replica: _Replica, why: str) -> None:
        """Failover + respawn for one dead/wedged incarnation."""
        COUNTERS.increment("replica_crashes")
        replica.breaker.record_failure()
        if why == "wedged":
            # A silent-but-running process still holds the model lock-free
            # serving loop hostage; take it down before handing its work
            # to someone else, so it cannot answer after the transfer.
            replica.proc.terminate()
            replica.proc.join(timeout=2.0)
            if replica.proc.is_alive():
                replica.proc.kill()
                replica.proc.join(timeout=2.0)
        orphans: List[_Batch] = []
        with self._replicas_lock:
            for batch_id in list(self._inflight):
                batch = self._inflight[batch_id]
                if batch.owner == (replica.rid, replica.incarnation):
                    orphans.append(self._inflight.pop(batch_id))
        if not self._stop_event.is_set() \
                and replica.respawns < self.config.max_respawns:
            shard, watermark = self._shard_snapshot(replica.rid)
            fresh = self._spawn_replica(replica.rid,
                                        replica.incarnation + 1, shard)
            fresh.respawns = replica.respawns + 1
            with self._replicas_lock:
                self._replicas[replica.rid] = fresh
            # Records retained while the replacement was spawning missed
            # both the snapshot and the live index path; send the delta.
            with self._records_lock:
                delta = [
                    (gidx, record) for gidx, record
                    in enumerate(self._records[watermark:], start=watermark)
                    if self._ring.owner(record.uid) == replica.rid]
            for gidx, record in delta:
                with contextlib.suppress(ValueError, OSError):
                    fresh.work_q.put(("index", gidx, record))
            COUNTERS.increment("replica_respawns")
        for batch in orphans:
            self._failover(batch)

    def _supervisor_loop(self) -> None:
        while not self._stop_event.is_set():
            self._stop_event.wait(self.config.supervisor_interval)
            if self._stop_event.is_set():
                return
            now = wall_clock()
            dead: List[Tuple[_Replica, str]] = []
            with self._replicas_lock:
                for replica in self._replicas.values():
                    if not replica.alive:
                        continue
                    grace = self.config.spawn_grace if not replica.ready \
                        else self.config.heartbeat_timeout
                    if not replica.proc.is_alive():
                        replica.alive = False
                        dead.append((replica, "crashed"))
                    elif now - replica.last_beat > grace:
                        replica.alive = False
                        dead.append((replica, "wedged"))
            for replica, why in dead:
                self._handle_replica_death(replica, why)

    # -- admission ------------------------------------------------------
    def submit(self, pairs: Sequence[EntityPair],
               deadline_s: Optional[float] = None) -> PendingResponse:
        """Admit a scoring request or reject it explicitly.

        Raises :class:`ServiceOverloaded` when ``queue_capacity`` requests
        are already in flight and :class:`ServiceClosed` after shutdown;
        both count as rejected (``COUNTERS.requests_shed``) so
        conservation stays checkable.
        """
        if not self.counters.try_admit(self.config.queue_capacity):
            COUNTERS.increment("requests_shed")
            raise ServiceOverloaded(
                f"{self.config.queue_capacity} requests already in flight; "
                f"retry with backoff")
        with self._submit_lock:
            closed = self._closed
            if not closed:
                self._next_request_id += 1
                request_id = self._next_request_id
        if closed:
            self.counters.record_reject()
            COUNTERS.increment("requests_shed")
            raise ServiceClosed("cluster is closed")
        if deadline_s is None:
            deadline_s = self.config.default_deadline
        pairs = tuple(pairs)
        fusible = all(pair_width(self.cascade.tier1.matcher, pair)
                      <= self.pad_width for pair in pairs) \
            if self.pad_width else True
        now = wall_clock()
        pending = PendingResponse(request_id)
        request = _ClusterRequest(
            id=request_id, pairs=pairs, admitted_at=now,
            deadline_at=None if deadline_s is None else now + deadline_s,
            pending=pending,
            scores=np.zeros(len(pairs), dtype=np.float64),
            labels=np.zeros(len(pairs), dtype=np.int64),
            fusible=fusible)
        if not pairs:
            tier = self.cascade.tier1
            response = MatchResponse(
                request_id=request_id, status="ok", tier=tier.name,
                tier_level=tier.level, scores=request.scores,
                labels=request.labels, latency=wall_clock() - now)
            self.counters.record_answer(response)
            pending._fulfill(response)
            return pending
        with self._submit_lock:
            self._requests[request_id] = request
        with self._coalesce_lock:
            self._pending.append(request)
            self._pending_pairs += len(pairs)
            if self._oldest_pending is None:
                self._oldest_pending = now
            buffered = self._pending_pairs
        if buffered >= self.config.coalesce_pairs:
            self._flush_event.set()
        return pending

    # -- coalescing + dispatch ------------------------------------------
    def _dispatcher_loop(self) -> None:
        while True:
            with self._coalesce_lock:
                buffered = self._pending_pairs
                oldest = self._oldest_pending
            now = wall_clock()
            window = self.config.coalesce_window
            due = buffered and (
                buffered >= self.config.coalesce_pairs
                or (oldest is not None and now - oldest >= window)
                or self._stop_event.is_set() or self._closed_nolock())
            if due:
                self._flush()
                continue
            if self._stop_event.is_set():
                return
            timeout = window if oldest is None \
                else max(window - (now - oldest), 0.001)
            self._flush_event.wait(timeout)
            self._flush_event.clear()

    def _closed_nolock(self) -> bool:
        with self._submit_lock:
            return self._closed

    def _flush(self) -> None:
        """Drain the buffer into batches: fused packs, solos, expiries."""
        with self._coalesce_lock:
            requests = self._pending
            self._pending = []
            self._pending_pairs = 0
            self._oldest_pending = None
        if not requests:
            return
        now = wall_clock()
        fused_src: List[_ClusterRequest] = []
        batches: List[Tuple[_Batch, Optional[str]]] = []
        for request in requests:
            whole = ((request, 0, len(request.pairs)),)
            if request.deadline_at is not None and now >= request.deadline_at:
                batches.append((self._new_batch(whole), "deadline"))
            elif not request.fusible:
                batches.append((self._new_batch(whole), None))
            else:
                fused_src.append(request)
        cap = self.config.coalesce_pairs
        slices: List[Tuple[_ClusterRequest, int, int]] = []
        size = 0
        packed: List[_Batch] = []
        for request in fused_src:
            offset = 0
            total = len(request.pairs)
            while offset < total:
                take = min(cap - size, total - offset)
                slices.append((request, offset, take))
                size += take
                offset += take
                if size >= cap:
                    packed.append(self._new_batch(tuple(slices)))
                    slices = []
                    size = 0
        if slices:
            packed.append(self._new_batch(tuple(slices)))
        fused = sum(1 for batch in packed if len(batch.slices) > 1)
        fused_pairs = sum(len(batch.pairs) for batch in packed
                          if len(batch.slices) > 1)
        solo = len(packed) - fused \
            + sum(1 for _, reason in batches if reason is None)
        with self._coalesce_lock:
            self._flushes += 1
            self._fused_batches += fused
            self._fused_pairs += fused_pairs
            self._solo_batches += solo
        for batch, reason in batches:
            if reason == "deadline":
                self._to_fallback(batch, "deadline")
            else:
                self._dispatch(batch)
        for batch in packed:
            self._dispatch(batch)

    def _new_batch(self,
                   slices: Tuple[Tuple[_ClusterRequest, int, int], ...]) -> _Batch:
        pairs: List[EntityPair] = []
        for request, start, count in slices:
            pairs.extend(request.pairs[start:start + count])
        with self._replicas_lock:
            self._next_batch_id += 1
            batch_id = self._next_batch_id
        return _Batch(id=batch_id, slices=tuple(slices), pairs=tuple(pairs))

    def _choose_replica_locked(
            self, exclude: Optional[Tuple[int, int]]) -> Optional[_Replica]:
        """Least-loaded live replica whose breaker admits traffic.

        Called with ``serving.cluster.replicas`` held; the per-replica
        breaker nests at a strictly greater rank.
        """
        load: Dict[int, int] = {}
        for batch in self._inflight.values():
            if batch.owner is not None:
                load[batch.owner[0]] = load.get(batch.owner[0], 0) + 1
        best: Optional[Tuple[Tuple[int, int], _Replica]] = None
        for replica in self._replicas.values():
            if not replica.alive:
                continue
            if exclude is not None \
                    and (replica.rid, replica.incarnation) == exclude:
                continue
            if replica.breaker.state == OPEN:
                continue
            key = (load.get(replica.rid, 0), replica.rid)
            if best is None or key < best[0]:
                best = (key, replica)
        return best[1] if best is not None else None

    def _dispatch(self, batch: _Batch,
                  exclude: Optional[Tuple[int, int]] = None) -> None:
        attempts = 0
        kind = None
        while True:
            try:
                kind = fault_point("serving.dispatch", batch=batch.id)
                break
            except InjectedFault:
                # A dispatch attempt that died before reaching a replica;
                # counted, then retried on the spot (the batch is still
                # exclusively ours — nothing was handed off yet).
                attempts += 1
                with self._replicas_lock:
                    self._dispatch_faults += 1
                if attempts > 3:
                    kind = None
                    break
        if kind == "stall":
            time.sleep(self.config.stall_seconds)
        with self._replicas_lock:
            target = self._choose_replica_locked(exclude)
            if target is not None:
                batch.owner = (target.rid, target.incarnation)
                self._inflight[batch.id] = batch
        if target is None:
            self._to_fallback(batch, "replica-unavailable")
            return
        try:
            target.work_q.put(("score", batch.id, batch.pairs))
        except (ValueError, OSError):
            # The incarnation was torn down between choice and put; take
            # the batch back (if the supervisor has not already) and let
            # the fallback answer it.
            with self._replicas_lock:
                reclaimed = self._inflight.pop(batch.id, None)
            if reclaimed is not None:
                self._to_fallback(reclaimed, "replica-unavailable")

    def _failover(self, batch: _Batch) -> None:
        """Re-dispatch a lost batch, or degrade it once the budget is spent."""
        batch.attempts += 1
        batch.redispatched = True
        COUNTERS.increment("requests_redispatched",
                           len({slice_[0].id for slice_ in batch.slices}))
        if batch.attempts > self.config.max_redispatch:
            self._to_fallback(batch, "replica-failed")
        else:
            self._dispatch(batch, exclude=batch.owner)

    def _to_fallback(self, batch: _Batch, reason: str) -> None:
        self._fallback_q.put((batch, reason))

    # -- collectors (one per replica incarnation) ------------------------
    def _collector_loop(self, replica: _Replica) -> None:
        """Drain one incarnation's private response queue.

        Exits only once the incarnation is no longer ``alive`` *and* its
        queue is empty, so the "stopped" goodbye (graceful) or the last
        buffered results (crash) are always processed before the thread
        dies.  The exit condition deliberately ignores ``_stop_event``:
        ``_stop_replicas`` flips ``alive`` itself as the floor for
        incarnations that died without a goodbye.
        """
        while True:
            try:
                message = replica.resp_q.get(timeout=0.05)
            except (queue.Empty, OSError, ValueError):
                message = None
            if message is None:
                with self._replicas_lock:
                    gone = not replica.alive
                if gone:
                    return
                continue
            kind = message[0]
            if kind in ("beat", "ready"):
                self._on_beat(message[1], message[2], ready=(kind == "ready"))
            elif kind == "result":
                self._on_result(*message[1:])
            elif kind == "error":
                self._on_error(*message[1:])
            elif kind == "cands":
                self._on_candidates(*message[1:])
            elif kind == "stopped":
                self._on_stopped(*message[1:])

    def _on_beat(self, rid: int, incarnation: int, ready: bool) -> None:
        with self._replicas_lock:
            replica = self._replicas.get(rid)
            if replica is not None and replica.incarnation == incarnation:
                replica.last_beat = wall_clock()
                replica.beats += 1
                if ready:
                    replica.ready = True

    def _replica_of(self, rid: int, incarnation: int) -> Optional[_Replica]:
        with self._replicas_lock:
            replica = self._replicas.get(rid)
            if replica is not None and replica.incarnation == incarnation:
                return replica
            return None

    def _on_result(self, rid: int, incarnation: int, batch_id: int,
                   values: List[float]) -> None:
        batch = None
        corrupt = False
        with self._replicas_lock:
            candidate = self._inflight.get(batch_id)
            if candidate is None:
                # Stale: the batch was already completed or transferred
                # to a new owner (who will be the one to answer it).
                self._stale_results += 1
            else:
                scores = np.asarray(values, dtype=np.float64)
                if scores.shape[0] == len(candidate.pairs) \
                        and bool(np.isfinite(scores).all()):
                    batch = self._inflight.pop(batch_id)
                else:
                    # Router-side validation: a mangled response is a
                    # replica failure, not an answer.
                    corrupt = True
                    batch = self._inflight.pop(batch_id)
        replica = self._replica_of(rid, incarnation)
        if batch is None:
            return
        if corrupt:
            with self._replicas_lock:
                self._replica_errors += 1
            if replica is not None:
                replica.breaker.record_failure()
            self._failover(batch)
            return
        if replica is not None:
            replica.breaker.record_success()
        self._complete(batch, np.asarray(values, dtype=np.float64),
                       self.cascade.tier1, reason=None)

    def _on_error(self, rid: int, incarnation: int,
                  batch_id: Optional[int], detail: str) -> None:
        batch = None
        with self._replicas_lock:
            self._replica_errors += 1
            if batch_id is not None:
                candidate = self._inflight.get(batch_id)
                if candidate is not None \
                        and candidate.owner == (rid, incarnation):
                    batch = self._inflight.pop(batch_id)
        replica = self._replica_of(rid, incarnation)
        if replica is not None:
            replica.breaker.record_failure()
        if batch is not None:
            self._failover(batch)

    def _on_candidates(self, rid: int, incarnation: int, qid: int,
                       gidxs: List[int]) -> None:
        done = False
        with self._replicas_lock:
            query = self._queries.get(qid)
            if query is not None:
                query.results[rid] = list(gidxs)
                done = set(query.results) >= set(query.expected)
        if done and query is not None:
            query.event.set()

    def _on_stopped(self, rid: int, incarnation: int,
                    fired: Dict[object, int]) -> None:
        with self._replicas_lock:
            replica = self._replicas.get(rid)
            if replica is not None and replica.incarnation == incarnation:
                replica.alive = False
                replica.faults_fired = {
                    f"{site}:{kind}": count
                    for (site, kind), count in sorted(fired.items())}

    # -- local fallback scoring -----------------------------------------
    def _fallback_loop(self) -> None:
        """Tier-2/3 answers for batches tier 1 could not serve.

        Deadline-expired batches skip straight to the floor (matching the
        single-process cascade); everything else tries the feature tier
        first and degrades to the floor if it faults.
        """
        while True:
            try:
                item = self._fallback_q.get(timeout=0.05)
            except queue.Empty:
                item = None
            if item is None:
                if self._stop_event.is_set():
                    return
                continue
            batch, reason = item
            pairs = list(batch.pairs)
            tier = self.cascade.by_level(3 if reason == "deadline" else 2)
            try:
                scores = tier.score(pairs)
            except Exception:
                tier = self.cascade.by_level(3)
                scores = tier.score(pairs)
            COUNTERS.increment("tier2_degradations" if tier.level == 2
                               else "tier3_degradations")
            self._complete(batch, np.asarray(scores, dtype=np.float64),
                           tier, reason=reason)

    # -- completion ------------------------------------------------------
    def _complete(self, batch: _Batch, scores: np.ndarray,
                  tier: ScoringTier, reason: Optional[str]) -> None:
        """Fill each request segment; finalize requests that are whole.

        Completion may run from the collector and the fallback thread
        concurrently (two batches of one split request), so segment state
        mutates under ``serving.cluster.submit``; the labels forward runs
        outside it.
        """
        labels = tier.predict(scores)
        finished: List[_ClusterRequest] = []
        offset = 0
        with self._submit_lock:
            for request, start, count in batch.slices:
                request.scores[start:start + count] = scores[offset:offset + count]
                request.labels[start:start + count] = labels[offset:offset + count]
                request.filled += count
                if tier.level >= request.worst_level:
                    request.worst_level = tier.level
                    request.tier_name = tier.name
                    if reason is not None:
                        request.degrade_reason = reason
                if batch.redispatched:
                    request.redispatched = True
                if request.filled >= len(request.pairs):
                    finished.append(request)
                offset += count
        now = wall_clock()
        for request in finished:
            response = MatchResponse(
                request_id=request.id, status="ok", tier=request.tier_name,
                tier_level=request.worst_level, scores=request.scores,
                labels=request.labels, degraded=request.worst_level > 1,
                degrade_reason=request.degrade_reason,
                deadline_missed=(request.deadline_at is not None
                                 and now > request.deadline_at),
                latency=now - request.admitted_at,
                redispatched=request.redispatched)
            self._finish(request, response)

    def _finish(self, request: _ClusterRequest,
                response: MatchResponse) -> None:
        """Exactly-once finalization: only the thread that pops the
        request from the registry answers it (completion and the
        force-answer floor can race during shutdown)."""
        with self._submit_lock:
            live = self._requests.pop(request.id, None) is not None
        if live:
            self.counters.record_answer(response)
            request.pending._fulfill(response)

    # -- sharded online blocking -----------------------------------------
    def index_record(self, record: Entity) -> int:
        """Retain ``record`` and index it on its ring-assigned shard.

        The router keeps every record (that is what rebuilds a crashed
        replica's shard); the owning replica mirrors it into its local
        blocker via the incremental ``add`` path.
        """
        if self.blocker_factory is None:
            raise RuntimeError("cluster was built without a blocker factory")
        with self._records_lock:
            gidx = len(self._records)
            self._records.append(record)
        rid = self._ring.owner(record.uid)
        with self._replicas_lock:
            replica = self._replicas.get(rid)
            target_q = replica.work_q \
                if replica is not None and replica.alive else None
        if target_q is not None:
            with contextlib.suppress(ValueError, OSError):
                target_q.put(("index", gidx, record))
        return gidx

    def submit_query(self, record: Entity, k: int = 16,
                     deadline_s: Optional[float] = None,
                     ) -> Tuple[List[int], Optional[PendingResponse]]:
        """Block-then-score one raw record against every live shard.

        Candidate membership is the union of each live shard's top-``k``;
        emission is deterministic (ascending retained-record index, capped
        at ``k``).  Shards that miss the ``query_timeout`` are counted in
        ``stats()["sharding"]["query_shard_misses"]`` — a degraded recall
        answer, never a hang.
        """
        if self.blocker_factory is None:
            raise RuntimeError("cluster was built without a blocker factory")
        event = threading.Event()
        with self._replicas_lock:
            self._next_query_id += 1
            qid = self._next_query_id
            targets = [(replica.rid, replica.work_q)
                       for replica in self._replicas.values() if replica.alive]
            query = _Query(qid=qid,
                           expected=frozenset(rid for rid, _ in targets),
                           results={}, event=event)
            self._queries[qid] = query
        for _, target_q in targets:
            with contextlib.suppress(ValueError, OSError):
                target_q.put(("query", qid, record, k))
        if targets:
            event.wait(self.config.query_timeout)
        with self._replicas_lock:
            self._queries.pop(qid, None)
            results = {rid: list(gidxs)
                       for rid, gidxs in query.results.items()}
            missing = len(query.expected) - len(results)
            if missing > 0:
                self._query_shard_misses += missing
        merged = sorted({gidx for gidxs in results.values()
                         for gidx in gidxs})[:k]
        if not merged:
            return [], None
        with self._records_lock:
            others = [self._records[gidx] for gidx in merged]
        pairs = [EntityPair(record, other, 0) for other in others]
        return merged, self.submit(pairs, deadline_s=deadline_s)

    # -- observability ---------------------------------------------------
    def healthy(self) -> bool:
        """True while serving (a live replica exists) — and still true
        after a *graceful* close that answered everything it admitted.
        Only crash states (no live replica while open, or a close that
        lost requests) read unhealthy."""
        return bool(self.stats()["healthy"])

    def stats(self) -> Dict[str, object]:
        """Health/stats endpoint; every section is one consistent pass
        under its own lock, taken in hierarchy order, never nested."""
        with self._submit_lock:
            closed = self._closed
            drained = self._drained
            open_requests = len(self._requests)
        with self._coalesce_lock:
            coalesce = {
                "window_s": self.config.coalesce_window,
                "max_pairs": self.config.coalesce_pairs,
                "pad_width": self.pad_width,
                "flushes": self._flushes,
                "fused_batches": self._fused_batches,
                "fused_pairs": self._fused_pairs,
                "solo_batches": self._solo_batches,
                "pending_pairs": self._pending_pairs,
            }
        with self._records_lock:
            retained = len(self._records)
        with self._replicas_lock:
            replicas = {
                str(replica.rid): {
                    "alive": replica.alive,
                    "ready": replica.ready,
                    "pid": replica.proc.pid,
                    "incarnation": replica.incarnation,
                    "respawns": replica.respawns,
                    "beats": replica.beats,
                    "shard_size": replica.shard_size,
                    "breaker": replica.breaker.as_dict(),
                    "faults_fired": dict(replica.faults_fired),
                }
                for replica in self._replicas.values()}
            any_alive = any(replica.alive
                            for replica in self._replicas.values())
            sharding = {
                "retained_records": retained,
                "inflight_batches": len(self._inflight),
                "open_queries": len(self._queries),
                "stale_results": self._stale_results,
                "replica_errors": self._replica_errors,
                "dispatch_faults": self._dispatch_faults,
                "query_shard_misses": self._query_shard_misses,
            }
        requests = self.counters.snapshot()
        recovery = COUNTERS.as_dict()
        healthy = (any_alive and not closed) \
            or (closed and drained and bool(requests["conserved"]))
        return {
            "healthy": healthy,
            "state": "closed" if closed else "running",
            "service": {
                "replicas": self.config.replicas,
                "queue_capacity": self.config.queue_capacity,
                "open_requests": open_requests,
                "start_method": self.config.start_method,
            },
            "requests": requests,
            "coalesce": coalesce,
            "replica_table": replicas,
            "sharding": sharding,
            "recovery": {key: recovery[key] for key in (
                "transient_retries", "breaker_trips", "requests_shed",
                "tier2_degradations", "tier3_degradations",
                "replica_crashes", "replica_respawns",
                "requests_redispatched")},
        }
