"""Chaos-soak harness: concurrent clients + fault injection + invariants.

Drives real traffic through a live :class:`InferenceService` from several
client threads while a PR-2 :class:`FaultPlan` injects transient IO faults,
poisoned cache entries, and slow-call stalls at the registered
``fault_point`` sites, then checks the two serving invariants:

* **conservation** — every submitted request was answered or explicitly
  rejected; client-side tallies and service counters must agree and sum up
  (``answered + rejected == submitted``);
* **tier-1 parity** — every response produced by tier 1 is bitwise-
  identical to the offline single-threaded ``matcher.scores`` answer for
  the same pairs.

The report carries throughput and p50/p99 latency (overall and per tier),
which ``benchmarks/run_serve.py`` serializes into ``BENCH_serve.json`` and
``repro serve --soak`` prints.

Client workload composition is seeded (R001): request slices are drawn
from a caller-seeded generator, so two soaks with the same seed submit the
same pair batches in the same per-client order.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.schema import EntityPair
from repro.perf.profiler import wall_clock
from repro.reliability.faults import FaultPlan, FaultSpec, inject
from repro.serving.cluster import ClusterConfig, ClusterService
from repro.serving.service import (
    InferenceService,
    MatchResponse,
    ServiceClosed,
    ServiceOverloaded,
    ServingConfig,
)
from repro.serving.tiers import DegradationCascade


def default_chaos_plan(period: int = 5, stall_period: int = 7,
                       poison_period: int = 11) -> FaultPlan:
    """The standard soak mix: transients, stalls, and cache poisonings.

    Periodic ``at`` schedules (every ``period``-th tier-1 score call, etc.)
    keep the fault mix deterministic in *total volume* for a given amount
    of traffic regardless of thread interleaving.
    """
    return FaultPlan((
        FaultSpec(site="serving.score", kind="transient",
                  at=tuple(range(0, 1_000_000, period))),
        FaultSpec(site="serving.score", kind="stall",
                  at=tuple(range(3, 1_000_000, stall_period))),
        FaultSpec(site="cache.entry", kind="poison",
                  at=tuple(range(0, 1_000_000, poison_period))),
        FaultSpec(site="serving.tier2", kind="transient",
                  at=(2, 9)),
    ))


@dataclasses.dataclass
class SoakReport:
    """Everything the soak measured and asserted."""

    duration: float
    submitted: int
    answered: int
    rejected: int
    conserved: bool
    tier1_parity: bool
    parity_checked: int              # tier-1 responses compared bitwise
    by_tier: Dict[str, int]
    throughput: float                # answered requests / second
    latency: Dict[str, Dict[str, float]]  # per tier + "all": p50/p99/mean
    faults_triggered: Dict[str, int]
    service_stats: Dict[str, object]
    #: Lock-order sanitizer report (``REPRO_LOCKCHECK=1`` / ``--lockcheck``),
    #: None when the sanitizer was off for this soak.
    lockcheck: Optional[Dict[str, object]] = None

    @property
    def locks_clean(self) -> bool:
        """No lock-order violations and no unguarded shared writes.

        Vacuously true when the sanitizer was off — ``ok`` then asserts
        exactly what it asserted before the sanitizer existed.
        """
        if self.lockcheck is None:
            return True
        return not (self.lockcheck["order_violations"]
                    or self.lockcheck["unguarded_writes"])

    @property
    def ok(self) -> bool:
        return self.conserved and self.tier1_parity and self.locks_clean

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def summary(self) -> str:
        lines = [
            f"soak: {self.submitted} submitted = {self.answered} answered "
            f"+ {self.rejected} rejected "
            f"[{'conserved' if self.conserved else 'LOST REQUESTS'}]",
            f"tier-1 parity: {'bitwise-identical' if self.tier1_parity else 'MISMATCH'}"
            f" ({self.parity_checked} responses checked)",
            f"throughput: {self.throughput:.1f} req/s over {self.duration:.2f}s",
        ]
        for tier, stats in sorted(self.latency.items()):
            if stats["count"]:
                lines.append(
                    f"  latency[{tier}]  p50={stats['p50'] * 1e3:.1f}ms  "
                    f"p99={stats['p99'] * 1e3:.1f}ms  n={int(stats['count'])}")
        if self.faults_triggered:
            fired = ", ".join(f"{key}={count}" for key, count
                              in sorted(self.faults_triggered.items()))
            lines.append(f"faults fired: {fired}")
        if self.lockcheck is not None:
            acquisitions = sum(self.lockcheck["acquisitions"].values())
            lines.append(
                f"lockcheck: {acquisitions} acquisitions over "
                f"{len(self.lockcheck['acquisitions'])} locks, "
                f"{len(self.lockcheck['edges'])} dynamic edges, "
                f"{len(self.lockcheck['order_violations'])} order violations, "
                f"{len(self.lockcheck['unguarded_writes'])} unguarded writes "
                f"[{'clean' if self.locks_clean else 'VIOLATIONS'}]")
        return "\n".join(lines)


def _latency_stats(latencies: Sequence[float]) -> Dict[str, float]:
    if not latencies:
        return {"count": 0, "p50": 0.0, "p99": 0.0, "mean": 0.0}
    arr = np.asarray(latencies, dtype=np.float64)
    return {
        "count": int(arr.size),
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
    }


def _client(service: InferenceService, batches: Sequence[Tuple[EntityPair, ...]],
            deadline_s: Optional[float],
            out: List[Tuple[Tuple[EntityPair, ...], "object"]],
            rejections: List[int]) -> None:
    """One client thread: submit every batch, keep handles and rejections."""
    for batch in batches:
        try:
            pending = service.submit(batch, deadline_s=deadline_s)
        except (ServiceOverloaded, ServiceClosed):
            rejections.append(1)
            continue
        out.append((batch, pending))


def run_soak(cascade: DegradationCascade, pairs: Sequence[EntityPair],
             config: ServingConfig = ServingConfig(),
             plan: Optional[FaultPlan] = None,
             n_clients: int = 4, requests_per_client: int = 8,
             pairs_per_request: int = 8,
             deadline_s: Optional[float] = None,
             seed: int = 0,
             firewall=None,
             store=None,
             lockcheck: Optional[bool] = None) -> SoakReport:
    """Run the chaos soak and return the measured/asserted report.

    ``plan=None`` runs clean traffic (the latency baseline);
    :func:`default_chaos_plan` is the standard fault mix.  The tier-1
    offline parity reference is computed *after* the service closes, on
    the caller's thread, with the same single-call path ``predict`` uses.
    ``firewall`` (a :class:`~repro.guard.firewall.DataFirewall`) routes
    every request's pairs through validation at submit; parity is then
    only asserted for responses with nothing quarantined (the offline
    reference scores the raw batch).
    ``store`` (a :class:`~repro.store.embedstore.EmbeddingStore`) puts the
    embedding store in front of tier 1; the offline parity reference is
    read after the service wraps the tier, so parity covers the
    store-backed path itself.
    ``lockcheck`` turns the runtime lock-order sanitizer on for the soak
    (per-thread order assertion + unguarded-write watches on the shared
    classes); ``None`` defers to ``REPRO_LOCKCHECK`` / an already-active
    checker.  The report lands in :attr:`SoakReport.lockcheck` and any
    violation fails :attr:`SoakReport.ok`.
    """
    rng = np.random.default_rng(seed)
    pool = list(pairs)
    if not pool:
        raise ValueError("cannot soak with an empty pair pool")

    # Pre-draw every client's batches so submission threads do no RNG work.
    client_batches: List[List[Tuple[EntityPair, ...]]] = []
    for _ in range(n_clients):
        batches = []
        for _ in range(requests_per_client):
            start = int(rng.integers(0, max(len(pool) - pairs_per_request, 0) + 1))
            batches.append(tuple(pool[start:start + pairs_per_request]))
        client_batches.append(batches)

    checker = None
    owns_checker = False
    restore_watches = None
    if lockcheck is None or lockcheck:
        from repro.analysis import lockcheck as lc_mod

        if lockcheck is None:
            lockcheck = lc_mod.env_requested() or lc_mod.active() is not None
        if lockcheck:
            checker = lc_mod.active()
            if checker is None:
                checker = lc_mod.enable()
                owns_checker = True
            restore_watches = lc_mod.install_watches()

    service = InferenceService(cascade, config, firewall=firewall, store=store)
    answered: List[List[Tuple[Tuple[EntityPair, ...], object]]] = \
        [[] for _ in range(n_clients)]
    rejections: List[List[int]] = [[] for _ in range(n_clients)]

    started = wall_clock()
    plan_ctx = inject(plan) if plan is not None else None
    try:
        if plan_ctx is not None:
            plan_ctx.__enter__()
        with service:
            threads = [
                threading.Thread(
                    target=_client,
                    args=(service, client_batches[i], deadline_s,
                          answered[i], rejections[i]),
                    name=f"soak-client-{i}")
                for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            responses: List[Tuple[Tuple[EntityPair, ...], MatchResponse]] = []
            for client_out in answered:
                for batch, pending in client_out:
                    responses.append((batch, pending.result(timeout=120.0)))
    finally:
        if plan_ctx is not None:
            plan_ctx.__exit__(None, None, None)
        if restore_watches is not None:
            restore_watches()
        if owns_checker:
            from repro.analysis import lockcheck as lc_mod

            lc_mod.disable()
    duration = wall_clock() - started

    # -- invariants -----------------------------------------------------
    n_rejected = sum(len(r) for r in rejections)
    n_submitted = n_rejected + len(responses)
    snapshot = service.counters.snapshot()
    conserved = (
        snapshot["conserved"]
        and snapshot["submitted"] == n_submitted
        and snapshot["answered"] == len(responses)
        and snapshot["rejected"] == n_rejected
    )

    parity = True
    parity_checked = 0
    offline = cascade.tier1.matcher
    for batch, response in responses:
        if response.tier_level != 1 or response.quarantined:
            continue
        parity_checked += 1
        reference = offline.scores(list(batch))
        if not np.array_equal(response.scores, reference):
            parity = False

    # -- metrics --------------------------------------------------------
    by_tier: Dict[str, int] = {}
    latencies: Dict[str, List[float]] = {"all": []}
    for _, response in responses:
        tier = response.tier or "error"
        by_tier[tier] = by_tier.get(tier, 0) + 1
        latencies.setdefault(tier, []).append(response.latency)
        latencies["all"].append(response.latency)

    faults = {}
    if plan is not None:
        faults = {f"{site}:{kind}": count
                  for (site, kind), count in sorted(plan.triggered.items())}

    return SoakReport(
        duration=duration,
        submitted=n_submitted,
        answered=len(responses),
        rejected=n_rejected,
        conserved=bool(conserved),
        tier1_parity=parity,
        parity_checked=parity_checked,
        by_tier=by_tier,
        throughput=len(responses) / duration if duration > 0 else 0.0,
        latency={tier: _latency_stats(vals)
                 for tier, vals in sorted(latencies.items())},
        faults_triggered=faults,
        service_stats=service.stats(),
        lockcheck=checker.report() if checker is not None else None,
    )


# ======================================================================
# Cluster soak: the multi-process variant, including kill -9 chaos
# ======================================================================
def default_cluster_chaos_plan(transient_period: int = 9,
                               stall_period: int = 13) -> FaultPlan:
    """Router-side fault mix for the cluster soak (``serving.dispatch``)."""
    return FaultPlan((
        FaultSpec(site="serving.dispatch", kind="transient",
                  at=tuple(range(2, 1_000_000, transient_period))),
        FaultSpec(site="serving.dispatch", kind="stall",
                  at=tuple(range(5, 1_000_000, stall_period))),
    ))


def default_replica_fault_specs(transient_period: int = 7,
                                stall_period: int = 11,
                                corrupt_at: Tuple[int, ...] = (4,),
                                ) -> Tuple[FaultSpec, ...]:
    """Per-replica fault specs (``serving.replica``), shipped over the
    spawn boundary so each replica process builds its own deterministic
    plan: transients absorbed by the in-replica retry, stalls slowing the
    fused forward, and a corrupt response the router-side validation must
    catch and fail over."""
    return (
        FaultSpec(site="serving.replica", kind="transient",
                  at=tuple(range(1, 1_000_000, transient_period))),
        FaultSpec(site="serving.replica", kind="stall",
                  at=tuple(range(3, 1_000_000, stall_period))),
        FaultSpec(site="serving.replica", kind="corrupt", at=corrupt_at),
    )


@dataclasses.dataclass
class ReplicaKill:
    """Chaos directive: SIGKILL one replica process mid-soak.

    The killer thread waits until ``after_answered`` requests have been
    answered (so the cluster is demonstrably mid-flight), then sends
    ``sig`` to the current incarnation of replica ``replica_id``.
    """

    replica_id: int = 0
    after_answered: int = 4
    sig: int = signal.SIGKILL


@dataclasses.dataclass
class ClusterSoakReport(SoakReport):
    """:class:`SoakReport` plus the cluster-only evidence: replica table,
    redispatch parity coverage, and what the killer thread did."""

    #: Responses stamped ``redispatched`` (work failed over from a lost
    #: replica); the subset that still answered at tier 1 is also counted
    #: in ``redispatch_parity_checked`` — those were compared bitwise.
    redispatched_responses: int = 0
    redispatch_parity_checked: int = 0
    kill: Optional[Dict[str, object]] = None

    def summary(self) -> str:
        lines = [super().summary()]
        stats = self.service_stats
        replica_table = stats.get("replica_table", {})
        incarnations = {rid: info["incarnation"]
                        for rid, info in sorted(replica_table.items())}
        recovery = stats.get("recovery", {})
        lines.append(
            f"replicas: {len(replica_table)} "
            f"(incarnations {incarnations}), "
            f"crashes={recovery.get('replica_crashes', 0)} "
            f"respawns={recovery.get('replica_respawns', 0)} "
            f"redispatched={recovery.get('requests_redispatched', 0)}")
        coalesce = stats.get("coalesce", {})
        lines.append(
            f"coalescing: {coalesce.get('fused_batches', 0)} fused batches "
            f"({coalesce.get('fused_pairs', 0)} pairs) + "
            f"{coalesce.get('solo_batches', 0)} solo, "
            f"pad_width={coalesce.get('pad_width', 0)}")
        if self.redispatched_responses:
            lines.append(
                f"redispatched responses: {self.redispatched_responses} "
                f"({self.redispatch_parity_checked} tier-1, bitwise-checked)")
        if self.kill is not None:
            lines.append(
                f"killed replica {self.kill['replica_id']} "
                f"(pid {self.kill['pid']}) after "
                f"{self.kill['at_answered']} answers")
        return "\n".join(lines)


def _killer(service: ClusterService, kill: ReplicaKill,
            outcome: Dict[str, object]) -> None:
    """Kill thread body: wait for mid-flight traffic, then SIGKILL."""
    deadline = wall_clock() + 60.0
    while wall_clock() < deadline:
        if service.counters.snapshot()["answered"] >= kill.after_answered:
            break
        time.sleep(0.002)
    pid = service.replica_pid(kill.replica_id)
    if pid is not None:
        outcome["replica_id"] = kill.replica_id
        outcome["pid"] = pid
        outcome["at_answered"] = service.counters.snapshot()["answered"]
        os.kill(pid, kill.sig)


def run_cluster_soak(cascade: DegradationCascade,
                     pairs: Sequence[EntityPair],
                     config: Optional[ClusterConfig] = None,
                     plan: Optional[FaultPlan] = None,
                     n_clients: int = 4, requests_per_client: int = 8,
                     pairs_per_request: int = 8,
                     deadline_s: Optional[float] = None,
                     seed: int = 0,
                     kill: Optional[ReplicaKill] = None,
                     blocker_factory=None,
                     store_path: Optional[str] = None,
                     lockcheck: Optional[bool] = None) -> ClusterSoakReport:
    """The chaos soak against a :class:`ClusterService`.

    Same invariants as :func:`run_soak` — conservation and bitwise tier-1
    parity (the offline reference is the cluster's own wrapped tier-1
    scorer, so parity covers the fixed-pad coalescing path itself) — plus
    the cluster-only ones the report carries: redispatched responses are
    parity-checked like any other, and ``kill`` SIGKILLs a replica
    mid-soak to prove conservation and parity hold *across a crash*.

    The clock starts after every replica reports ready, so throughput
    measures steady-state serving rather than process spawn + model
    unpickling.
    """
    rng = np.random.default_rng(seed)
    pool = list(pairs)
    if not pool:
        raise ValueError("cannot soak with an empty pair pool")
    config = config or ClusterConfig()

    client_batches: List[List[Tuple[EntityPair, ...]]] = []
    for _ in range(n_clients):
        batches = []
        for _ in range(requests_per_client):
            start = int(rng.integers(0, max(len(pool) - pairs_per_request, 0) + 1))
            batches.append(tuple(pool[start:start + pairs_per_request]))
        client_batches.append(batches)

    checker = None
    owns_checker = False
    restore_watches = None
    if lockcheck is None or lockcheck:
        from repro.analysis import lockcheck as lc_mod

        if lockcheck is None:
            lockcheck = lc_mod.env_requested() or lc_mod.active() is not None
        if lockcheck:
            checker = lc_mod.active()
            if checker is None:
                checker = lc_mod.enable()
                owns_checker = True
            restore_watches = lc_mod.install_watches()

    service = ClusterService(cascade, config,
                             blocker_factory=blocker_factory,
                             store_path=store_path)
    answered: List[List[Tuple[Tuple[EntityPair, ...], object]]] = \
        [[] for _ in range(n_clients)]
    rejections: List[List[int]] = [[] for _ in range(n_clients)]
    kill_outcome: Dict[str, object] = {}

    plan_ctx = inject(plan) if plan is not None else None
    try:
        if plan_ctx is not None:
            plan_ctx.__enter__()
        with service:
            service.wait_ready()
            started = wall_clock()
            threads = [
                threading.Thread(
                    target=_client,
                    args=(service, client_batches[i], deadline_s,
                          answered[i], rejections[i]),
                    name=f"soak-client-{i}")
                for i in range(n_clients)
            ]
            if kill is not None:
                threads.append(threading.Thread(
                    target=_killer, args=(service, kill, kill_outcome),
                    name="soak-killer"))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            responses: List[Tuple[Tuple[EntityPair, ...], MatchResponse]] = []
            for client_out in answered:
                for batch, pending in client_out:
                    responses.append((batch, pending.result(timeout=120.0)))
            duration = wall_clock() - started
    finally:
        if plan_ctx is not None:
            plan_ctx.__exit__(None, None, None)
        if restore_watches is not None:
            restore_watches()
        if owns_checker:
            from repro.analysis import lockcheck as lc_mod

            lc_mod.disable()

    # -- invariants -----------------------------------------------------
    n_rejected = sum(len(r) for r in rejections)
    n_submitted = n_rejected + len(responses)
    snapshot = service.counters.snapshot()
    conserved = (
        snapshot["conserved"]
        and snapshot["submitted"] == n_submitted
        and snapshot["answered"] == len(responses)
        and snapshot["rejected"] == n_rejected
    )

    parity = True
    parity_checked = 0
    redispatched = 0
    redispatch_checked = 0
    offline = cascade.tier1.matcher
    for batch, response in responses:
        if response.redispatched:
            redispatched += 1
        if response.tier_level != 1:
            continue
        parity_checked += 1
        if response.redispatched:
            redispatch_checked += 1
        reference = offline.scores(list(batch))
        if not np.array_equal(response.scores, reference):
            parity = False

    # -- metrics --------------------------------------------------------
    by_tier: Dict[str, int] = {}
    latencies: Dict[str, List[float]] = {"all": []}
    for _, response in responses:
        tier = response.tier or "error"
        by_tier[tier] = by_tier.get(tier, 0) + 1
        latencies.setdefault(tier, []).append(response.latency)
        latencies["all"].append(response.latency)

    stats = service.stats()
    faults: Dict[str, int] = {}
    if plan is not None:
        faults = {f"{site}:{kind}": count
                  for (site, kind), count in sorted(plan.triggered.items())}
    for info in stats["replica_table"].values():
        for key, count in info["faults_fired"].items():
            faults[key] = faults.get(key, 0) + count

    return ClusterSoakReport(
        duration=duration,
        submitted=n_submitted,
        answered=len(responses),
        rejected=n_rejected,
        conserved=bool(conserved),
        tier1_parity=parity,
        parity_checked=parity_checked,
        by_tier=by_tier,
        throughput=len(responses) / duration if duration > 0 else 0.0,
        latency={tier: _latency_stats(vals)
                 for tier, vals in sorted(latencies.items())},
        faults_triggered=faults,
        service_stats=stats,
        lockcheck=checker.report() if checker is not None else None,
        redispatched_responses=redispatched,
        redispatch_parity_checked=redispatch_checked,
        kill=kill_outcome or None,
    )
