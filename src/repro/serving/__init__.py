"""Online serving layer: admission control, deadlines, circuit breakers,
and a three-tier degradation cascade over any trained matcher.

Stdlib-threading only; see ``docs/SERVING.md`` for the architecture and
``repro serve`` / ``benchmarks/run_serve.py`` for the entry points.
"""

from repro.serving.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerStats,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.serving.service import (
    InferenceService,
    MatchResponse,
    PendingResponse,
    ServiceClosed,
    ServiceOverloaded,
    ServingConfig,
)
from repro.serving.soak import SoakReport, default_chaos_plan, run_soak
from repro.serving.tiers import (
    TIER_FEATURES,
    TIER_FULL,
    TIER_TFIDF,
    DegradationCascade,
    ScoringTier,
    TfidfMatcher,
    build_cascade,
)

__all__ = [
    "BreakerStats",
    "CircuitBreaker",
    "CircuitOpenError",
    "CLOSED",
    "DegradationCascade",
    "HALF_OPEN",
    "InferenceService",
    "MatchResponse",
    "OPEN",
    "PendingResponse",
    "ScoringTier",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServingConfig",
    "SoakReport",
    "TIER_FEATURES",
    "TIER_FULL",
    "TIER_TFIDF",
    "TfidfMatcher",
    "build_cascade",
    "default_chaos_plan",
    "run_soak",
]
