"""Online serving layer: admission control, deadlines, circuit breakers,
and a three-tier degradation cascade over any trained matcher — either in
one process (:class:`InferenceService`) or as a crash-tolerant
router/replica cluster with cross-request batch coalescing and a
consistent-hash-sharded blocking index (:class:`ClusterService`).

Stdlib threading + multiprocessing only; see ``docs/SERVING.md`` for the
architecture and ``repro serve`` / ``benchmarks/run_serve.py`` for the
entry points.
"""

from repro.serving.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerStats,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.serving.cluster import (
    MAX_PAD_WIDTH,
    ClusterConfig,
    ClusterService,
    ConsistentHashRing,
    pad_width_for,
)
from repro.serving.service import (
    InferenceService,
    MatchResponse,
    PendingResponse,
    ServiceClosed,
    ServiceOverloaded,
    ServingConfig,
)
from repro.serving.soak import (
    ClusterSoakReport,
    ReplicaKill,
    SoakReport,
    default_chaos_plan,
    default_cluster_chaos_plan,
    default_replica_fault_specs,
    run_cluster_soak,
    run_soak,
)
from repro.serving.tiers import (
    TIER_FEATURES,
    TIER_FULL,
    TIER_TFIDF,
    DegradationCascade,
    ScoringTier,
    TfidfMatcher,
    build_cascade,
)

__all__ = [
    "BreakerStats",
    "CircuitBreaker",
    "CircuitOpenError",
    "CLOSED",
    "ClusterConfig",
    "ClusterService",
    "ClusterSoakReport",
    "ConsistentHashRing",
    "DegradationCascade",
    "HALF_OPEN",
    "InferenceService",
    "MatchResponse",
    "MAX_PAD_WIDTH",
    "OPEN",
    "PendingResponse",
    "ReplicaKill",
    "ScoringTier",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServingConfig",
    "SoakReport",
    "TIER_FEATURES",
    "TIER_FULL",
    "TIER_TFIDF",
    "TfidfMatcher",
    "build_cascade",
    "default_chaos_plan",
    "default_cluster_chaos_plan",
    "default_replica_fault_specs",
    "pad_width_for",
    "run_cluster_soak",
    "run_soak",
]
