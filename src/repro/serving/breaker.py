"""Circuit breaker for the tier-1 (LM-encoding + cache) scoring path.

The classic three-state machine (Nygard, *Release It!*):

* **closed** — calls flow through; each failure increments a consecutive-
  failure count, each success resets it.  ``failure_threshold`` consecutive
  failures trip the breaker open.
* **open** — calls are rejected immediately (``CircuitOpenError``) without
  touching the protected dependency, so a struggling LM/cache path gets
  breathing room instead of a retry pile-on.  After ``reset_timeout``
  seconds the breaker admits exactly one probe call.
* **half-open** — the probe is in flight.  If it succeeds the breaker
  closes; if it fails the breaker re-opens and the timeout restarts.

Every transition is counted (``BreakerStats``) and every trip to open also
increments the global ``COUNTERS.breaker_trips``, so the chaos soak can
assert the breaker actually engaged.  All state lives behind one lock —
the serving worker pool drives a single breaker from many threads.

Timing goes through an injectable ``clock`` (default
:func:`repro.perf.profiler.wall_clock`, the repo's sanctioned monotonic
read) so tests can step time deterministically.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, TypeVar

from repro.perf.profiler import wall_clock
from repro.reliability.counters import COUNTERS
from repro.reliability.locks import named_lock

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(RuntimeError):
    """Raised instead of calling through while the breaker is open."""


@dataclasses.dataclass
class BreakerStats:
    """Transition and outcome counters for one breaker."""

    successes: int = 0
    failures: int = 0
    #: Calls rejected without touching the dependency (state was open).
    short_circuits: int = 0
    opened: int = 0
    half_opens: int = 0
    closed_from_half_open: int = 0
    reopened_from_half_open: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class CircuitBreaker:
    """Thread-safe consecutive-failure circuit breaker."""

    def __init__(self, failure_threshold: int = 3, reset_timeout: float = 0.25,
                 name: str = "tier1",
                 clock: Callable[[], float] = wall_clock):
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.name = name
        self.clock = clock
        self.stats = BreakerStats()
        self._lock = named_lock("serving.breaker")
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """The current state (resolving an elapsed open timeout lazily)."""
        with self._lock:
            self._resolve_timeout()
            return self._state

    def _resolve_timeout(self) -> None:
        """open -> half-open once ``reset_timeout`` has elapsed (lock held)."""
        if self._state == OPEN and self._opened_at is not None \
                and self.clock() - self._opened_at >= self.reset_timeout:
            self._state = HALF_OPEN
            self._probe_in_flight = False
            self.stats.half_opens += 1

    def allow(self) -> bool:
        """True if a call may proceed now.

        In half-open state exactly one caller is admitted as the probe;
        everyone else is short-circuited until the probe reports back.
        """
        with self._lock:
            self._resolve_timeout()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            self.stats.short_circuits += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self.stats.successes += 1
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._probe_in_flight = False
                self.stats.closed_from_half_open += 1

    def record_failure(self) -> None:
        with self._lock:
            self.stats.failures += 1
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._trip()
                self.stats.reopened_from_half_open += 1
            elif self._state == CLOSED \
                    and self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        """-> open (lock held); counted locally and globally."""
        self._state = OPEN
        self._opened_at = self.clock()
        self._probe_in_flight = False
        self.stats.opened += 1
        COUNTERS.increment("breaker_trips")

    # ------------------------------------------------------------------
    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` through the breaker.

        Raises :class:`CircuitOpenError` without calling when open; records
        the outcome otherwise (any exception counts as a failure and is
        re-raised unchanged).
        """
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker {self.name!r} is {self._state}")
        try:
            value = fn()
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return value

    def as_dict(self) -> Dict[str, object]:
        """Stats-endpoint snapshot: state + counters."""
        with self._lock:
            self._resolve_timeout()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
                **self.stats.as_dict(),
            }
