"""Bounded LRU caches for the hot encoding paths.

Entity resolution workloads re-encode the same records over and over: a
record appears in many candidate pairs, and every training epoch revisits
every pair.  The caches here memoize the deterministic parts of that work —
tokenization, padded id/mask batches, and (under ``no_grad`` inference with
frozen weights) language-model context arrays — so each record is encoded
once per dataset instead of once per pair per epoch.

Everything in this module is dependency-light (numpy-only values, plain
Python containers, plus the stdlib-only ``repro.reliability`` leaf modules)
so it can be imported from the autograd engine, the optimizers, and the
module system without cycles.

Cache entries are exact memoizations: a hit returns the very arrays a miss
would have computed, so cached and uncached runs are bitwise identical.
Mutable weights are handled by :func:`params_version`, a global counter every
optimizer step and ``load_state_dict`` bumps; any cache key that depends on
model weights includes the version, so stale activations can never be
returned.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.reliability.counters import COUNTERS
from repro.reliability.faults import fault_point

#: Sentinel an injected ``poison`` fault stores in place of a cached value.
_POISONED = object()

#: Write-sanitizer hook, installed by :mod:`repro.analysis.sanitizer`.  When
#: set, it is called as ``hook(value)`` on every stored entry so cached
#: arrays can be frozen against in-place mutation.
_freeze_hook = None


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Cache hits whose value failed validation (or was poisoned) and were
    #: recomputed via the uncached path instead of failing the run.
    degraded: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0.0 when unused)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "degraded": self.degraded,
            "hit_rate": round(self.hit_rate, 4),
        }

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.degraded = 0


class LRUCache:
    """A bounded least-recently-used mapping with usage counters.

    ``get``/``put`` move touched keys to the most-recent end; inserting past
    ``capacity`` evicts the least-recently-used entry.  ``get_or_compute``
    is the memoization workhorse used by the encoders.
    """

    def __init__(self, capacity: int, name: str = "lru"):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.name = name
        self.stats = CacheStats()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def keys(self):
        """Keys from least- to most-recently used."""
        return list(self._data.keys())

    def get(self, key: Hashable, default: Any = None) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            self.stats.misses += 1
            return default
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if _freeze_hook is not None:
            _freeze_hook(value)
        if key in self._data:
            self._data.move_to_end(key)
            self._data[key] = value
            return
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any],
                       validate: Optional[Callable[[Any], bool]] = None) -> Any:
        """Memoized ``compute()`` with poisoned-entry degradation.

        A hit whose value fails ``validate`` (or was poisoned by the
        ``cache.entry`` fault site) is dropped and recomputed through the
        uncached path — counted in ``stats.degraded`` and the global
        ``COUNTERS.cache_degraded`` — so a bad cache entry can never fail
        or corrupt a run.
        """
        try:
            value = self._data[key]
        except KeyError:
            self.stats.misses += 1
            value = compute()
            self.put(key, value)
            return value
        self._data.move_to_end(key)
        if fault_point("cache.entry", cache=self.name) == "poison":
            self._data[key] = _POISONED  # the stored entry itself is mangled
            value = _POISONED
        if value is _POISONED or (validate is not None and not validate(value)):
            del self._data[key]
            self.stats.degraded += 1
            self.stats.misses += 1
            COUNTERS.increment("cache_degraded")
            value = compute()
            self.put(key, value)
            return value
        self.stats.hits += 1
        return value

    def clear(self) -> None:
        self._data.clear()


# ----------------------------------------------------------------------
# Parameter versioning — invalidates weight-dependent cache entries.
# ----------------------------------------------------------------------
_params_version = 0


def params_version() -> int:
    """Monotonic counter identifying the current state of *all* model weights."""
    return _params_version


def bump_params_version() -> None:
    """Called by optimizer steps and ``load_state_dict`` after mutating weights."""
    global _params_version
    _params_version += 1


# ----------------------------------------------------------------------
# The global cache registry.
# ----------------------------------------------------------------------
#: Default entry bounds; override via repro.perf.configure(cache_size=...).
DEFAULT_CAPACITY = {
    "tokens": 65536,    # per-(record, slot) token id lists — tiny entries
    "batches": 8192,    # padded (ids, mask) batch arrays
    "lm": 1024,         # no_grad LM context arrays — the big entries
    "store": 2048,      # dequantized embedding-store records (store/)
}

_caches: Dict[str, LRUCache] = {}


def get_cache(name: str) -> LRUCache:
    """Return (creating on first use) the named global cache."""
    cache = _caches.get(name)
    if cache is None:
        cache = LRUCache(DEFAULT_CAPACITY.get(name, 4096), name=name)
        _caches[name] = cache
    return cache


def token_cache() -> LRUCache:
    """Record/attribute token-id memo (tokenize + vocab.encode)."""
    return get_cache("tokens")


def batch_cache() -> LRUCache:
    """Padded (ids, mask) slot-batch memo, reused across epochs."""
    return get_cache("batches")


def lm_cache() -> LRUCache:
    """Frozen-weights LM context memo for ``no_grad`` inference."""
    return get_cache("lm")


def resize(name: str, capacity: int) -> None:
    """Resize a cache, dropping LRU entries if it shrinks."""
    cache = get_cache(name)
    cache.capacity = capacity
    while len(cache) > capacity:
        cache._data.popitem(last=False)
        cache.stats.evictions += 1


def clear_caches() -> None:
    """Drop all cached entries (counters survive; use reset_stats too)."""
    for cache in _caches.values():
        cache.clear()


def reset_stats() -> None:
    for cache in _caches.values():
        cache.stats.reset()


def cache_stats() -> Dict[str, Dict[str, float]]:
    """Per-cache counters plus an aggregate row (used by BENCH_perf.json)."""
    out: Dict[str, Dict[str, float]] = {}
    total = CacheStats()
    for name, cache in sorted(_caches.items()):
        out[name] = {"entries": len(cache), **cache.stats.as_dict()}
        total.hits += cache.stats.hits
        total.misses += cache.stats.misses
        total.evictions += cache.stats.evictions
    out["total"] = total.as_dict()
    return out


_instance_counter = 0


def instance_token(obj) -> int:
    """A process-unique id for ``obj``, assigned lazily and pinned to it.

    Unlike ``id()``, tokens are never reused after garbage collection, so
    they are safe inside cache keys.
    """
    token = getattr(obj, "_perf_token", None)
    if token is None:
        global _instance_counter
        _instance_counter += 1
        token = _instance_counter
        try:
            obj._perf_token = token
        except AttributeError:  # __slots__ instances can't be tagged
            return id(obj)
    return token


def entity_key(entity) -> Tuple[str, int]:
    """Stable cache key for one record: ``(uid, hash of attribute text)``.

    The text hash guards against uid collisions across datasets and against
    augmented/dirty variants that reuse uids with altered values.
    """
    return (entity.uid, hash(entity.attributes))


def composition_digest(*parts) -> str:
    """Compact digest of a batch composition for cache keys.

    Batch-level caches used to key on the full tuple of per-record entity
    keys, so every entry carried an O(batch) key that was almost never
    shared (BENCH_perf.json showed an 11% hit rate with zero evictions —
    the bound was never even exercised).  Digesting the composition keeps
    the same uniqueness (SHA-1 over the parts' reprs; collisions are
    negligible) at constant key size.  In-process only: parts may contain
    salted ``hash()`` values from :func:`entity_key`.
    """
    digest = hashlib.sha1()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
    return digest.hexdigest()
