"""Op-level profiler for the autograd engine.

Every differentiable op funnels through ``Tensor._make``; the engine exposes
a module-level ``_profile_hook`` there that is ``None`` when profiling is
off — disabled profiling therefore costs one global load and an ``is None``
test per op, nothing more, and *zero* extra allocations.

When enabled, the hook records per-op:

* **call count**;
* **allocated bytes** (the op's output array size — a good proxy for
  allocation pressure in a numpy engine);
* **wall time**, attributed by boundary timing: the elapsed time since the
  previous op finished belongs to the op being recorded.  In a single-thread
  numpy engine this is accurate to within the non-op Python glue between
  consecutive ops.

Use the :func:`profile` context manager::

    with profile() as prof:
        run_workload()
    print(prof.report())
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Dict, List, Optional

import importlib

# The package re-exports the ``tensor`` *function*, shadowing the submodule
# attribute — resolve the module itself so the hook lands in its globals.
_tensor_mod = importlib.import_module("repro.autograd.tensor")


@dataclasses.dataclass
class OpStats:
    """Aggregate counters for one op name."""

    op: str
    calls: int = 0
    seconds: float = 0.0
    bytes: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "op": self.op,
            "calls": self.calls,
            "seconds": round(self.seconds, 6),
            "bytes": self.bytes,
        }


class Profiler:
    """Collects per-op wall-time / call-count / allocated-bytes counters."""

    def __init__(self):
        self.enabled = False
        self._stats: Dict[str, OpStats] = {}
        self._last: Optional[float] = None
        self.started_at: Optional[float] = None
        self.total_seconds: float = 0.0

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.enabled:
            return
        self.enabled = True
        self._last = None
        self.started_at = time.perf_counter()
        _tensor_mod._profile_hook = self._record

    def stop(self) -> None:
        if not self.enabled:
            return
        self.enabled = False
        _tensor_mod._profile_hook = None
        if self.started_at is not None:
            self.total_seconds += time.perf_counter() - self.started_at
            self.started_at = None
        self._last = None

    def reset(self) -> None:
        self._stats.clear()
        self._last = None
        self.total_seconds = 0.0
        if self.enabled:
            self.started_at = time.perf_counter()

    # ------------------------------------------------------------------
    def _record(self, op: str, nbytes: int) -> None:
        now = time.perf_counter()
        stats = self._stats.get(op)
        if stats is None:
            stats = self._stats[op] = OpStats(op)
        stats.calls += 1
        stats.bytes += nbytes
        anchor = self._last if self._last is not None else self.started_at
        if anchor is not None:
            stats.seconds += now - anchor
        self._last = now

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, OpStats]:
        return dict(self._stats)

    def top(self, n: int = 10, by: str = "seconds") -> List[OpStats]:
        """The ``n`` most expensive ops, sorted by ``seconds``/``calls``/``bytes``."""
        if by not in ("seconds", "calls", "bytes"):
            raise ValueError(f"unknown sort key {by!r}")
        ranked = sorted(self._stats.values(), key=lambda s: getattr(s, by), reverse=True)
        return ranked[:n]

    def report(self, n: int = 10) -> str:
        """Fixed-width top-op table for the CLI."""
        rows = self.top(n)
        lines = [f"{'op':<14}{'calls':>10}{'seconds':>12}{'MB alloc':>12}"]
        lines.append("-" * len(lines[0]))
        for s in rows:
            lines.append(
                f"{s.op:<14}{s.calls:>10}{s.seconds:>12.4f}{s.bytes / 1e6:>12.2f}"
            )
        if not rows:
            lines.append("(no ops recorded)")
        return "\n".join(lines)


#: The process-wide profiler instance the engine hook feeds.
PROFILER = Profiler()


@contextlib.contextmanager
def profile(reset: bool = True):
    """Enable the global profiler for the duration of the block."""
    if reset:
        PROFILER.reset()
    PROFILER.start()
    try:
        yield PROFILER
    finally:
        PROFILER.stop()


def profiler_enabled() -> bool:
    return PROFILER.enabled


def wall_clock() -> float:
    """The repo's sanctioned monotonic-clock read (``time.perf_counter``).

    Timing is a perf-layer concern: R001 forbids direct ``time.*`` reads
    outside ``repro/perf`` so nondeterministic wall-clock values can never
    leak into model state.  Callers that need an elapsed-seconds measurement
    (CLI summaries, harness runtime columns) take deltas of this.
    """
    return time.perf_counter()
