"""``repro.perf`` — the performance layer: encoding caches, fast paths, profiler.

Two independent switches control the hot paths:

* ``cache`` (default **on**) — exact memoization of tokenization, padded
  slot batches, and frozen-weights LM contexts.  Bitwise-transparent: a
  cached run produces identical logits to an uncached one.
* ``fused_forward`` (default **off**) — the batched HierGAT forward that
  stacks every attribute slot and both record sides into one language-model
  call instead of ``2K`` per step.  Same modules and masking, but outputs
  are not identical to the per-slot path: the common padded width shifts the
  positional encodings of the comparator's right-side segment and
  reassociates float sums (the paths agree to float tolerance when all
  slots share one width).  A throughput mode — models trained with it are
  self-consistent.  Enable it for speed (``make bench-perf`` does).

Environment override: ``REPRO_PERF=0`` disables everything,
``REPRO_PERF=1`` (or ``full``) enables both switches.

The op-level profiler is always off unless explicitly started; see
:mod:`repro.perf.profiler`.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os

from repro.perf.cache import (
    CacheStats,
    LRUCache,
    batch_cache,
    bump_params_version,
    cache_stats,
    clear_caches,
    entity_key,
    get_cache,
    instance_token,
    lm_cache,
    params_version,
    reset_stats,
    resize,
    token_cache,
)
from repro.perf.profiler import PROFILER, OpStats, Profiler, profile, profiler_enabled

__all__ = [
    "CacheStats", "LRUCache", "OpStats", "Profiler", "PROFILER",
    "batch_cache", "bump_params_version", "cache_enabled", "cache_stats",
    "clear_caches", "configure", "disable", "enable", "entity_key",
    "fused_enabled", "get_cache", "instance_token", "lm_cache",
    "params_version", "perf_mode",
    "profile", "profiler_enabled", "reset_stats", "resize", "token_cache",
]


@dataclasses.dataclass
class PerfConfig:
    """The active switch settings for the performance layer."""

    cache: bool = True
    fused_forward: bool = False


def _from_env() -> PerfConfig:
    raw = os.environ.get("REPRO_PERF", "").strip().lower()
    if raw in ("0", "off", "false"):
        return PerfConfig(cache=False, fused_forward=False)
    if raw in ("1", "on", "full", "true"):
        return PerfConfig(cache=True, fused_forward=True)
    return PerfConfig()


_config = _from_env()


def get_config() -> PerfConfig:
    return _config


def cache_enabled() -> bool:
    return _config.cache


def fused_enabled() -> bool:
    return _config.fused_forward


def configure(cache: bool = None, fused_forward: bool = None) -> PerfConfig:
    """Update individual switches; ``None`` leaves a switch unchanged."""
    global _config
    _config = PerfConfig(
        cache=_config.cache if cache is None else bool(cache),
        fused_forward=(_config.fused_forward if fused_forward is None
                       else bool(fused_forward)),
    )
    if not _config.cache:
        clear_caches()
    return _config


def enable() -> PerfConfig:
    """Turn on every performance feature (cache + fused forward)."""
    return configure(cache=True, fused_forward=True)


def disable() -> PerfConfig:
    """Turn the whole performance layer off (the measured baseline)."""
    return configure(cache=False, fused_forward=False)


@contextlib.contextmanager
def perf_mode(cache: bool = None, fused_forward: bool = None):
    """Temporarily override the switches (restores the previous config)."""
    global _config
    previous = _config
    configure(cache=cache, fused_forward=fused_forward)
    try:
        yield _config
    finally:
        _config = previous
