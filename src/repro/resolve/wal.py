"""Crash-safe write-ahead log for the incremental cluster store.

The log is a directory of segment files.  Entries append to the active
``wal-<index>.open`` file (one CRC32-framed JSON line per entry, flushed
per append); when a segment reaches ``segment_entries`` entries it is
*published* — atomically renamed to ``wal-<index>.seg`` via
``os.replace``, the same tmp-then-replace discipline as ``repro.store``.
A reader therefore only ever sees either a fully published segment or
the single active file whose tail may be torn by a crash.

Entry framing is ``"<crc32:08x> <json>"`` with the JSON serialized with
sorted keys, so the byte stream for a given entry sequence is unique and
a resumed run that logs the same decisions produces bitwise-identical
segments.  :meth:`WriteAheadLog.replay` validates every checksum; on the
first torn or corrupt entry it truncates the log back to the last valid
entry (rewriting the damaged file through a ``*.tmp.<pid>`` sibling and
deleting everything after it), counts the repair in
``COUNTERS.wal_truncations``, and returns the surviving prefix.

Fault site ``resolve.wal`` instruments every append: ``transient``
faults are absorbed by retry-with-backoff, ``kill`` simulates dying
before the entry reached disk (the lost suffix is re-offered on resume),
and ``corrupt`` writes a torn line so the reader-side truncation path is
exercised, per the :mod:`repro.reliability.faults` contract.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, List, Optional, Tuple

from repro.reliability import RetryPolicy, fault_point, retry_with_backoff
from repro.reliability.counters import COUNTERS
from repro.reliability.locks import named_lock

#: Published (immutable) segment suffix.
SEGMENT_SUFFIX = ".seg"
#: Active (appendable, possibly torn-tailed) segment suffix.
OPEN_SUFFIX = ".open"


def encode_entry(entry: Dict[str, object]) -> str:
    """One log line: CRC32 of the canonical JSON payload, then the payload."""
    payload = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}"


def decode_entry(line: str) -> Optional[Dict[str, object]]:
    """Parse one log line; ``None`` for a torn or corrupt line."""
    if len(line) < 10 or line[8] != " ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    try:
        decoded = json.loads(payload)
    except json.JSONDecodeError:
        return None
    return decoded if isinstance(decoded, dict) else None


class WriteAheadLog:
    """Append-only CRC-framed log with atomic segment publication.

    File IO serializes behind the dedicated ``resolve.wal.io`` lock
    (R009: a ``*.io`` lock exists precisely to keep disk writes off the
    hot state locks); the ``resolve.wal`` fault point fires outside it.
    """

    def __init__(self, directory: str, segment_entries: int = 256,
                 retry_policy: RetryPolicy = RetryPolicy()):
        if segment_entries < 1:
            raise ValueError(
                f"segment_entries must be >= 1, got {segment_entries}")
        self.directory = directory
        self.segment_entries = int(segment_entries)
        self.retry_policy = retry_policy
        self._io = named_lock("resolve.wal.io")
        os.makedirs(directory, exist_ok=True)
        with self._io:
            self._scan()

    # -- directory state -----------------------------------------------
    def _scan(self) -> None:
        """Adopt the on-disk state: published segments, active file, tmps."""
        published: List[str] = []
        open_files: List[str] = []
        for name in sorted(os.listdir(self.directory)):
            path = os.path.join(self.directory, name)
            if ".tmp." in name:
                # A crashed truncation repair left its scratch file behind;
                # the original it meant to replace is still intact.
                os.remove(path)
            elif name.endswith(SEGMENT_SUFFIX):
                published.append(path)
            elif name.endswith(OPEN_SUFFIX):
                open_files.append(path)
        self._segments = published
        self._open_path = open_files[-1] if open_files else None
        self._open_count = 0
        if self._open_path is not None:
            with open(self._open_path, "r", encoding="utf-8") as fh:
                self._open_count = sum(1 for _ in fh)
        self._next_index = len(published) + len(open_files)

    def _paths(self) -> List[str]:
        """Every log file in entry order (published first, then active)."""
        paths = list(self._segments)
        if self._open_path is not None:
            paths.append(self._open_path)
        return paths

    @property
    def segments(self) -> Tuple[str, ...]:
        """Published (immutable) segment paths, in order."""
        with self._io:
            return tuple(self._segments)

    def entry_count(self) -> int:
        with self._io:
            total = self._open_count
            for path in self._segments:
                with open(path, "r", encoding="utf-8") as fh:
                    total += sum(1 for _ in fh)
            return total

    # -- append ---------------------------------------------------------
    def commit(self, entry: Dict[str, object]) -> None:
        """Durably append one entry (flushed before returning).

        ``transient`` faults retry, ``kill`` propagates before any bytes
        land (the entry is simply lost, like a real pre-write crash), and
        ``corrupt`` tears the written line so replay must truncate.
        """
        line = encode_entry(entry)

        def attempt() -> None:
            kind = fault_point("resolve.wal")
            self._write_line(line[:len(line) // 2] if kind == "corrupt"
                             else line)

        retry_with_backoff(attempt, policy=self.retry_policy,
                           description="WAL append")

    def _write_line(self, line: str) -> None:
        with self._io:
            if self._open_path is None:
                self._open_path = os.path.join(
                    self.directory, f"wal-{self._next_index:08d}{OPEN_SUFFIX}")
                self._next_index += 1
                self._open_count = 0
            with open(self._open_path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
            self._open_count += 1
            if self._open_count >= self.segment_entries:
                self._publish_open()

    def _publish_open(self) -> None:
        """Atomically promote the active file to an immutable segment."""
        final = self._open_path[:-len(OPEN_SUFFIX)] + SEGMENT_SUFFIX
        os.replace(self._open_path, final)
        self._segments.append(final)
        self._open_path = None
        self._open_count = 0

    def close(self) -> None:
        """Publish a non-empty active segment so a clean log is all ``.seg``."""
        with self._io:
            if self._open_path is not None and self._open_count > 0:
                self._publish_open()

    # -- replay ---------------------------------------------------------
    def replay(self) -> List[Dict[str, object]]:
        """Read every entry; truncate at the first invalid one.

        Returns the valid prefix.  A detected torn/corrupt entry repairs
        the log in place — the damaged file is rewritten to its valid
        prefix through a tmp + ``os.replace``, later files are deleted —
        and increments ``COUNTERS.wal_truncations`` exactly once.
        """
        truncated = False
        with self._io:
            entries: List[Dict[str, object]] = []
            paths = self._paths()
            for position, path in enumerate(paths):
                with open(path, "r", encoding="utf-8") as fh:
                    lines = fh.read().splitlines()
                valid: List[str] = []
                bad = False
                for line in lines:
                    entry = decode_entry(line)
                    if entry is None:
                        bad = True
                        break
                    valid.append(line)
                    entries.append(entry)
                if bad:
                    truncated = True
                    self._truncate_at(paths, position, valid)
                    break
        if truncated:
            COUNTERS.increment("wal_truncations")
        return entries

    def _truncate_at(self, paths: List[str], position: int,
                     valid_lines: List[str]) -> None:
        """Repair: keep ``valid_lines`` of ``paths[position]``, drop the rest."""
        damaged = paths[position]
        for path in paths[position + 1:]:
            os.remove(path)
        if valid_lines:
            tmp = f"{damaged}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                for line in valid_lines:
                    fh.write(line + "\n")
            os.replace(tmp, damaged)
        else:
            os.remove(damaged)
        self._scan()
