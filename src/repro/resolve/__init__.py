"""Streaming collective resolution: crash-safe incremental clustering.

Public surface of the ``repro.resolve`` subsystem (see ``docs/RESOLVE.md``):

* :class:`~repro.resolve.stream.StreamingResolver` — the streaming
  pipeline: reorder buffer → blocker → scorer → WAL → cluster store,
  with typed retractions and the conservation invariant
  ``clustered + pending + retracted == ingested``.
* :class:`~repro.resolve.store.ClusterStore` — incremental partition
  with transitivity-conflict repair and per-merge provenance.
* :class:`~repro.resolve.wal.WriteAheadLog` — CRC-framed segments with
  atomic publication; torn tails truncate to the last valid entry.
* :mod:`~repro.resolve.offline` — the batch-clustering reference and
  exact-match partition metrics the correctness harness compares against.
"""

from repro.resolve.events import (
    EDGE_KINDS,
    RecordArrival,
    ReorderBuffer,
    ScoredEdge,
)
from repro.resolve.offline import (
    generate_stream_edges,
    offline_partition,
    partition_metrics,
    partitions_equal,
    truth_partition,
)
from repro.resolve.store import ClusterStore, greedy_partition, merge_tiebreak
from repro.resolve.stream import (
    JaccardScorer,
    MatcherScorer,
    ResolveConfig,
    ServiceScorer,
    StreamingResolver,
)
from repro.resolve.wal import WriteAheadLog, decode_entry, encode_entry

__all__ = [
    "EDGE_KINDS",
    "RecordArrival",
    "ReorderBuffer",
    "ScoredEdge",
    "ClusterStore",
    "greedy_partition",
    "merge_tiebreak",
    "JaccardScorer",
    "MatcherScorer",
    "ResolveConfig",
    "ServiceScorer",
    "StreamingResolver",
    "WriteAheadLog",
    "decode_entry",
    "encode_entry",
    "generate_stream_edges",
    "offline_partition",
    "partition_metrics",
    "partitions_equal",
    "truth_partition",
]
