"""Incremental entity-cluster store with transitivity-conflict repair.

The partition this store maintains is *defined* as a pure function of the
current edge set: per match-connected component, a greedy constrained
correlation clustering that accepts match edges in ``(-score, seeded
blake2b tie-break)`` order unless accepting one would co-locate the
endpoints of a non-match edge (:func:`greedy_partition`).  Because the
definition never references arrival order, two consequences fall out
structurally rather than by careful bookkeeping:

* the final partition is invariant under any permutation of edge
  arrivals (the determinism property suite shuffles arrivals and asserts
  bitwise-equal digests), and
* the streaming partition equals offline batch clustering over the same
  edges (the correctness harness in :mod:`repro.resolve.offline`).

Incrementally, components without internal non-match constraints are
plain connected components (a merge is a cheap relabel); only components
carrying constraints recompute their greedy partition, and a strong
non-match edge landing inside an existing cluster triggers that
recompute as a *conflict repair* (``COUNTERS.resolve_conflict_repairs``).

Fault site ``resolve.merge`` instruments every edge application:
``transient`` retries, ``kill`` propagates (the chaos soak kills
mid-stream), and ``corrupt`` mangles the affected component's partition
so the store's self-check must detect the damage and recompute from the
retained edges (``COUNTERS.resolve_merge_recomputes``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Set, Tuple

from repro.reliability import RetryPolicy, fault_point, retry_with_backoff
from repro.reliability.counters import COUNTERS
from repro.reliability.locks import named_lock
from repro.resolve.events import ScoredEdge


def edge_key(u: str, v: str) -> Tuple[str, str]:
    """Canonical undirected edge key."""
    return (u, v) if u <= v else (v, u)


def merge_tiebreak(seed: int, u: str, v: str) -> str:
    """Seeded, salt-free tie-break for equal-score edges (R001: blake2b)."""
    text = f"{seed}:{u}:{v}".encode("utf-8")
    return hashlib.blake2b(text, digest_size=8).hexdigest()


def greedy_partition(members: Set[str],
                     match_scores: Dict[Tuple[str, str], float],
                     nonmatch_keys: Set[Tuple[str, str]],
                     seed: int) -> Dict[str, str]:
    """The canonical constrained partition of one component's subgraph.

    Pure function of its arguments: match edges are accepted in
    ``(-score, tie-break)`` order into a min-uid-rooted union-find unless
    the union would co-locate a non-match edge's endpoints.  Returns
    ``uid -> cluster id`` where a cluster's id is its smallest member uid.
    """
    parent = {uid: uid for uid in members}

    def find(uid: str) -> str:
        root = uid
        while parent[root] != root:
            root = parent[root]
        while parent[uid] != root:
            parent[uid], uid = root, parent[uid]
        return root

    constraints = sorted(nonmatch_keys)
    order = sorted(match_scores.items(),
                   key=lambda item: (-item[1],
                                     merge_tiebreak(seed, *item[0])))
    for (u, v), _score in order:
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        would_merge = {ru, rv}
        violated = any({find(a), find(b)} == would_merge
                       for a, b in constraints)
        if not violated:
            # Min-uid rooting keeps cluster ids canonical for free.
            parent[max(ru, rv)] = min(ru, rv)
    return {uid: find(uid) for uid in members}


class ClusterStore:
    """Thread-safe incremental cluster state over provenanced edges.

    All partition state lives under the ``resolve.store`` lock; the
    ``resolve.merge`` fault point and the global recovery counters are
    touched strictly outside it (R009/R010).
    """

    def __init__(self, seed: int = 0,
                 retry_policy: RetryPolicy = RetryPolicy()):
        self.seed = int(seed)
        self.retry_policy = retry_policy
        self._lock = named_lock("resolve.store")
        #: uid -> component root (smallest uid in the component).
        self._root: Dict[str, str] = {}
        #: component root -> member uids.
        self._members: Dict[str, Set[str]] = {}
        #: component root -> internal non-match edge keys (constraints).
        self._constraints: Dict[str, Set[Tuple[str, str]]] = {}
        #: uid -> cluster id (smallest uid in the cluster).
        self._cluster_of: Dict[str, str] = {}
        self._match: Dict[Tuple[str, str], ScoredEdge] = {}
        self._nonmatch: Dict[Tuple[str, str], ScoredEdge] = {}
        self._match_adj: Dict[str, Set[str]] = {}
        self._nonmatch_adj: Dict[str, Set[str]] = {}

    # -- registration ---------------------------------------------------
    def __contains__(self, uid: str) -> bool:
        with self._lock:
            return uid in self._root

    def __len__(self) -> int:
        with self._lock:
            return len(self._root)

    def add_record(self, uid: str) -> bool:
        """Register ``uid`` as a singleton; False if already present."""
        with self._lock:
            if uid in self._root:
                return False
            self._root[uid] = uid
            self._members[uid] = {uid}
            self._cluster_of[uid] = uid
            self._match_adj[uid] = set()
            self._nonmatch_adj[uid] = set()
            return True

    # -- edge application ------------------------------------------------
    def apply_edge(self, edge: ScoredEdge) -> None:
        """Fold one thresholded decision into the partition.

        Both endpoints must be registered (``add_record``).  Repeated
        keys overwrite their provenance — a re-scored pair supersedes the
        earlier decision.
        """
        injected = retry_with_backoff(
            lambda: fault_point("resolve.merge"),
            policy=self.retry_policy, description="cluster merge")
        with self._lock:
            for uid in (edge.u, edge.v):
                if uid not in self._root:
                    raise KeyError(f"record {uid!r} is not registered; "
                                   f"call add_record first")
            if edge.kind == "match":
                repaired = self._apply_match(edge)
            else:
                repaired = self._apply_nonmatch(edge)
            if injected == "corrupt":
                # Mangle the affected component's partition: the
                # self-check below must detect and recompute it.
                victim = min(self._members[self._root[edge.u]])
                self._cluster_of.pop(victim, None)
            recomputed = not self._check_component(self._root[edge.u])
        if repaired:
            COUNTERS.increment("resolve_conflict_repairs")
        if recomputed:
            COUNTERS.increment("resolve_merge_recomputes")

    def _apply_match(self, edge: ScoredEdge) -> bool:
        key = edge.key
        self._match[key] = edge
        self._match_adj[edge.u].add(edge.v)
        self._match_adj[edge.v].add(edge.u)
        ru, rv = self._root[edge.u], self._root[edge.v]
        if ru == rv:
            if self._constraints.get(ru):
                # A new in-component match edge can change the greedy
                # outcome only when constraints partition the component.
                self._repartition(ru)
            return False
        # Merge the two components (relabel the smaller member set).
        small, large = sorted((ru, rv), key=lambda r: len(self._members[r]))
        root = min(ru, rv)
        members = self._members.pop(large) | self._members.pop(small)
        constraints = (self._constraints.pop(large, set())
                       | self._constraints.pop(small, set()))
        for a in sorted(members):
            for b in sorted(self._nonmatch_adj[a]):
                if b in members:
                    constraints.add(edge_key(a, b))
        self._members[root] = members
        for uid in sorted(members):
            self._root[uid] = root
        if constraints:
            self._constraints[root] = constraints
            self._repartition(root)
            return True
        for uid in sorted(members):
            self._cluster_of[uid] = root
        return False

    def _apply_nonmatch(self, edge: ScoredEdge) -> bool:
        key = edge.key
        self._nonmatch[key] = edge
        self._nonmatch_adj[edge.u].add(edge.v)
        self._nonmatch_adj[edge.v].add(edge.u)
        ru, rv = self._root[edge.u], self._root[edge.v]
        if ru != rv:
            # The constraint only binds once the components merge.
            return False
        self._constraints.setdefault(ru, set()).add(key)
        if self._cluster_of[edge.u] == self._cluster_of[edge.v]:
            # Transitivity conflict: a strong non-match edge inside an
            # existing cluster.  Repair by canonical re-partition.
            self._repartition(ru)
            return True
        # Already-separated endpoints cannot change the greedy outcome:
        # every accepted merge stayed constraint-clean and every rejected
        # one stays rejected.
        return False

    def _repartition(self, root: str) -> None:
        """Recompute the canonical partition of one component (under lock)."""
        members = self._members[root]
        scores: Dict[Tuple[str, str], float] = {}
        for a in sorted(members):
            for b in sorted(self._match_adj[a]):
                if a < b and b in members:
                    scores[(a, b)] = self._match[(a, b)].score
        assignment = greedy_partition(
            members, scores, self._constraints.get(root, set()), self.seed)
        for uid in sorted(members):
            self._cluster_of[uid] = assignment[uid]

    def _check_component(self, root: str) -> bool:
        """Self-check one component; recompute from edges when damaged."""
        members = self._members.get(root, set())
        covered = all(self._cluster_of.get(uid) in members
                      for uid in members)
        if covered:
            return True
        self._repartition(root)
        return False

    # -- retraction -------------------------------------------------------
    def retract(self, uid: str) -> bool:
        """Un-merge ``uid``: remove it and its edges, re-form its component.

        Equivalent to replaying the retained edge set minus the record's
        edges: the surviving members split into match-connected
        components and each recomputes its canonical partition.
        """
        with self._lock:
            if uid not in self._root:
                return False
            root = self._root.pop(uid)
            members = self._members.pop(root)
            members.discard(uid)
            self._constraints.pop(root, None)
            self._cluster_of.pop(uid, None)
            for other in sorted(self._match_adj.pop(uid)):
                self._match_adj[other].discard(uid)
                self._match.pop(edge_key(uid, other), None)
            for other in sorted(self._nonmatch_adj.pop(uid)):
                self._nonmatch_adj[other].discard(uid)
                self._nonmatch.pop(edge_key(uid, other), None)
            for component in self._split_components(members):
                new_root = min(component)
                self._members[new_root] = component
                for member in sorted(component):
                    self._root[member] = new_root
                constraints = {
                    edge_key(a, b)
                    for a in sorted(component)
                    for b in sorted(self._nonmatch_adj[a]) if b in component}
                if constraints:
                    self._constraints[new_root] = constraints
                    self._repartition(new_root)
                else:
                    for member in sorted(component):
                        self._cluster_of[member] = new_root
        COUNTERS.increment("records_retracted")
        return True

    def _split_components(self, members: Set[str]) -> List[Set[str]]:
        """Match-connected components of ``members`` (deterministic order)."""
        seen: Set[str] = set()
        components: List[Set[str]] = []
        for start in sorted(members):
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbour in sorted(self._match_adj[node]):
                    if neighbour in members and neighbour not in component:
                        component.add(neighbour)
                        frontier.append(neighbour)
            seen |= component
            components.append(component)
        return components

    # -- inspection -------------------------------------------------------
    def assign(self, uid: str) -> Optional[str]:
        """The cluster id ``uid`` currently resolves to (None if unknown)."""
        with self._lock:
            return self._cluster_of.get(uid)

    def clusters(self) -> Tuple[Tuple[str, ...], ...]:
        """The full partition: sorted tuple of sorted member tuples."""
        with self._lock:
            by_cluster: Dict[str, List[str]] = {}
            for uid in sorted(self._cluster_of):
                by_cluster.setdefault(self._cluster_of[uid], []).append(uid)
        return tuple(tuple(members)
                     for _, members in sorted(by_cluster.items()))

    def edges(self) -> Tuple[ScoredEdge, ...]:
        """Every retained edge (provenance dump), in canonical key order."""
        with self._lock:
            retained = list(self._match.items()) + list(self._nonmatch.items())
        return tuple(edge for _, edge in sorted(retained,
                                                key=lambda item: item[0]))

    def digest(self) -> str:
        """Hash of the full cluster state (partition + edge provenance).

        Two stores with bitwise-identical state — the crash-resume
        acceptance check — produce equal digests.
        """
        clusters = self.clusters()
        payload = {
            "clusters": [list(c) for c in clusters],
            "edges": [edge.to_dict() for edge in self.edges()],
            "seed": self.seed,
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(text.encode("utf-8"),
                               digest_size=16).hexdigest()

    def state_size(self) -> int:
        """Serialized size in bytes of the digestable state (benchmarks)."""
        payload = {
            "clusters": [list(c) for c in self.clusters()],
            "edges": [edge.to_dict() for edge in self.edges()],
        }
        return len(json.dumps(payload, sort_keys=True,
                              separators=(",", ":")).encode("utf-8"))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "records": len(self._root),
                "components": len(self._members),
                "clusters": len(set(self._cluster_of.values())),
                "match_edges": len(self._match),
                "nonmatch_edges": len(self._nonmatch),
                "constrained_components": len(self._constraints),
            }
