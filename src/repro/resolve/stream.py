"""The streaming resolver: blocker + scorer + WAL + cluster store.

:class:`StreamingResolver` answers the production question "which
resolved entity does this record join?" under a continuous, out-of-order,
sometimes-retracted record stream.  Each offered record is write-ahead
logged, reordered (:class:`~repro.resolve.events.ReorderBuffer`), blocked
against the records indexed so far, scored, thresholded into match /
non-match edges, logged again as one atomic ``resolve`` entry, and folded
into the :class:`~repro.resolve.store.ClusterStore`.

Conservation invariant, enforced by :meth:`StreamingResolver.stats` and
asserted by the unit, fuzz, and chaos-soak suites::

    clustered + pending + retracted == ingested

Crash safety: :meth:`StreamingResolver.resume` rebuilds the exact
pre-crash state from the WAL — ``arrive`` entries re-feed a fresh reorder
buffer, released records re-apply their logged edges (bitwise provenance,
no re-scoring), ``retract`` entries apply at their log position, and
records released but never resolved before the crash are re-scored live
(the scorer is deterministic, so the continuation matches the
uninterrupted run).  The ``repro resolve`` CLI layers stream regeneration
on top so a ``kill -9`` mid-stream resumes to a bitwise-identical cluster
state.

Retractions arrive either directly (:meth:`StreamingResolver.retract`) or
as typed :class:`~repro.guard.quarantine.RetractionEvent`\\ s from a
subscribed quarantine store — a record the firewall confirms bad *after*
admission is un-merged with its edges removed.

Ingestion is single-writer: ``offer`` must be driven by one stream
thread (WAL arrival order defines replay order), while ``retract`` and
all read surfaces are safe from any thread.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.blocking.ann import MinHashLSHBlocker
from repro.data.schema import Entity, EntityPair
from repro.reliability.locks import named_lock
from repro.resolve.events import RecordArrival, ReorderBuffer, ScoredEdge
from repro.resolve.store import ClusterStore
from repro.resolve.wal import WriteAheadLog
from repro.text.tokenizer import tokenize


@dataclasses.dataclass(frozen=True)
class ResolveConfig:
    """Streaming-resolution knobs (all deterministic given the seed)."""

    #: Scores at or above this become ``match`` edges.
    match_threshold: float = 0.5
    #: Scores at or below this become ``nonmatch`` constraint edges.
    nonmatch_threshold: float = 0.05
    #: Reorder-buffer capacity before gaps are force-skipped.
    reorder_capacity: int = 64
    #: Blocker candidates scored per record.
    candidates_k: int = 8
    #: Seed for the blocker and the partition tie-break.
    seed: int = 0

    def __post_init__(self):
        if self.nonmatch_threshold >= self.match_threshold:
            raise ValueError("nonmatch_threshold must be below "
                             "match_threshold")


# ----------------------------------------------------------------------
# Scorers: anything with .scores(pairs) plus tier/params_version attrs
# ----------------------------------------------------------------------
class JaccardScorer:
    """Fit-free deterministic token-Jaccard scorer (the CLI floor)."""

    tier = "jaccard"
    params_version = "jaccard-v1"

    def scores(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        out = np.zeros(len(pairs), dtype=np.float64)
        for i, pair in enumerate(pairs):
            left = set(tokenize(pair.left.text()))
            right = set(tokenize(pair.right.text()))
            union = len(left | right)
            out[i] = len(left & right) / union if union else 0.0
        return out


class MatcherScorer:
    """Adapter over any serving-tier matcher (``.scores(pairs)``)."""

    def __init__(self, matcher, tier: str = "matcher",
                 params_version: str = "v0"):
        self.matcher = matcher
        self.tier = str(getattr(matcher, "name", tier))
        self.params_version = params_version

    def scores(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        return np.asarray(self.matcher.scores(pairs), dtype=np.float64)


class ServiceScorer:
    """Adapter over an inference service (``submit`` → ``MatchResponse``).

    After each call, :attr:`tier` / :attr:`params_version` reflect the
    tier that actually answered, so degraded answers carry honest
    provenance into the cluster store.
    """

    def __init__(self, service, timeout: float = 30.0):
        self.service = service
        self.timeout = timeout
        self.tier = "service"
        self.params_version = "v0"

    def scores(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        response = self.service.submit(pairs).result(timeout=self.timeout)
        if response.status != "ok" or response.scores is None:
            raise RuntimeError(
                f"scoring request {response.request_id} failed: "
                f"{response.error or response.status}")
        self.tier = str(response.tier)
        self.params_version = f"tier{response.tier_level}"
        return np.asarray(response.scores, dtype=np.float64)


def _record_dict(record: Entity) -> Dict[str, object]:
    return {"uid": record.uid, "values": dict(record.attributes),
            "source": record.source}


def _record_from(raw: Dict[str, object]) -> Entity:
    return Entity.from_dict(str(raw["uid"]), dict(raw["values"]),
                            source=str(raw.get("source", "")))


# ----------------------------------------------------------------------
class StreamingResolver:
    """Incremental collective resolution over a record stream."""

    def __init__(self, scorer, blocker=None,
                 config: ResolveConfig = ResolveConfig(),
                 wal: Optional[WriteAheadLog] = None,
                 store: Optional[ClusterStore] = None,
                 quarantine=None):
        self.scorer = scorer
        self.config = config
        self.blocker = blocker if blocker is not None \
            else MinHashLSHBlocker(seed=config.seed).fit([])
        self.wal = wal
        self.store = store if store is not None \
            else ClusterStore(seed=config.seed)
        self._lock = named_lock("resolve.stream")
        self._buffer = ReorderBuffer(config.reorder_capacity)
        self._queue: List[RecordArrival] = []
        self._resolving = False
        self._inflight: Optional[str] = None
        self._seen: Set[str] = set()
        self._resolved: Set[str] = set()
        self._retracted: Set[str] = set()
        self._dropped: Set[str] = set()
        self._ingested = 0
        self._pending = 0
        self._clustered = 0
        self._retracted_n = 0
        self._auto_seq = 0
        if quarantine is not None:
            quarantine.subscribe(self._on_retraction)

    # -- ingestion -------------------------------------------------------
    def offer(self, record: Entity, seq: Optional[int] = None) -> bool:
        """Offer one stream arrival; False for a duplicate uid.

        Single-writer: drive this from one ingestion thread.
        """
        with self._lock:
            if record.uid in self._seen:
                return False
            if seq is None:
                seq = self._auto_seq
            self._auto_seq = max(self._auto_seq, int(seq) + 1)
        if self.wal is not None:
            self.wal.commit({"type": "arrive", "seq": int(seq),
                             "record": _record_dict(record)})
        with self._lock:
            self._seen.add(record.uid)
            self._ingested += 1
            self._pending += 1
            self._queue.extend(self._buffer.offer(int(seq), record))
        self._pump()
        return True

    def drain(self) -> None:
        """Force-release everything still buffered and resolve it."""
        with self._lock:
            self._queue.extend(self._buffer.drain())
        self._pump()

    def close(self) -> None:
        """Drain, then publish the WAL's active segment."""
        self.drain()
        if self.wal is not None:
            self.wal.close()

    # -- retraction ------------------------------------------------------
    def retract(self, uid: str, reason: str = "retracted") -> bool:
        """Un-merge ``uid`` (typed retraction); False if unknown/repeated.

        A pending record is dropped at release; a clustered record is
        removed from the store with its edges.  A record mid-resolution
        is retracted by the resolution worker as soon as it lands.
        """
        with self._lock:
            if uid not in self._seen or uid in self._retracted \
                    or uid in self._dropped:
                return False
            if self._inflight == uid:
                # Mid-resolution: the pump applies the retraction (and
                # writes the WAL entry) right after the resolve entry.
                self._dropped.add(uid)
                return True
            if uid in self._resolved:
                pending_drop = False
                self._resolved.discard(uid)
                self._retracted.add(uid)
                self._clustered -= 1
                self._retracted_n += 1
            else:
                pending_drop = True
                self._dropped.add(uid)
                self._retracted.add(uid)
                self._pending -= 1
                self._retracted_n += 1
        if self.wal is not None:
            self.wal.commit({"type": "retract", "uid": uid,
                             "reason": reason})
        if not pending_drop:
            self.store.retract(uid)
        return True

    def _on_retraction(self, event) -> None:
        """Quarantine-store listener: typed post-admission retraction."""
        self.retract(event.uid, reason=event.reason)

    # -- resolution pipeline ---------------------------------------------
    def _pump(self) -> None:
        """Resolve released records FIFO; one worker at a time, no lock
        held across scoring, WAL, or store work."""
        while True:
            with self._lock:
                if self._resolving:
                    return
                arrival = None
                while self._queue:
                    candidate = self._queue.pop(0)
                    if candidate.record.uid in self._dropped:
                        # Retracted while pending: counted at retract time.
                        self._dropped.discard(candidate.record.uid)
                        continue
                    arrival = candidate
                    break
                if arrival is None:
                    return
                self._resolving = True
                self._inflight = arrival.record.uid
            try:
                self._resolve_one(arrival.record)
            finally:
                with self._lock:
                    self._resolving = False
                    self._inflight = None

    def _score_edges(self, record: Entity) -> List[ScoredEdge]:
        """Block + score + threshold one record against the index."""
        indexed = self.blocker.records
        candidates = self.blocker.candidates(record,
                                             k=self.config.candidates_k)
        with self._lock:
            gone = self._retracted | self._dropped
        partners = [indexed[j] for j in candidates
                    if indexed[j].uid != record.uid
                    and indexed[j].uid not in gone]
        if not partners:
            return []
        pairs = [EntityPair(left=record, right=partner, label=0)
                 for partner in partners]
        scores = np.asarray(self.scorer.scores(pairs), dtype=np.float64)
        tier = str(getattr(self.scorer, "tier", "scorer"))
        params_version = str(getattr(self.scorer, "params_version", "v0"))
        edges: List[ScoredEdge] = []
        for partner, score in zip(partners, scores):
            if score >= self.config.match_threshold:
                kind = "match"
            elif score <= self.config.nonmatch_threshold:
                kind = "nonmatch"
            else:
                continue
            edges.append(ScoredEdge(
                u=record.uid, v=partner.uid, score=float(score), kind=kind,
                tier=tier, params_version=params_version))
        return edges

    def _resolve_one(self, record: Entity) -> None:
        edges = self._score_edges(record)
        if self.wal is not None:
            self.wal.commit({"type": "resolve", "uid": record.uid,
                             "edges": [edge.to_dict() for edge in edges]})
        self._apply_resolution(record, edges)
        with self._lock:
            self._resolved.add(record.uid)
            self._pending -= 1
            self._clustered += 1
            retract_now = record.uid in self._dropped
            if retract_now:
                self._dropped.discard(record.uid)
                self._resolved.discard(record.uid)
                self._retracted.add(record.uid)
                self._clustered -= 1
                self._retracted_n += 1
        if retract_now:
            # Retraction raced the resolution: land it right behind.
            if self.wal is not None:
                self.wal.commit({"type": "retract", "uid": record.uid,
                                 "reason": "retracted"})
            self.store.retract(record.uid)

    def _apply_resolution(self, record: Entity,
                          edges: List[ScoredEdge]) -> None:
        self.blocker.add(record)  # repro: noqa[R007] -- index add serialized by the single resolution worker (_pump)
        self.store.add_record(record.uid)
        for edge in edges:
            self.store.apply_edge(edge)

    # -- inspection ------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """One-lock snapshot of the conservation tallies.

        ``conserved`` is computed from the same read as the numbers it
        describes (the :class:`~repro.guard.firewall.FirewallStats`
        discipline).
        """
        with self._lock:
            ingested = self._ingested
            pending = self._pending
            clustered = self._clustered
            retracted = self._retracted_n
            buffered = len(self._buffer)
            queued = len(self._queue)
        return {
            "ingested": ingested,
            "pending": pending,
            "clustered": clustered,
            "retracted": retracted,
            "buffered": buffered,
            "queued": queued,
            "conserved": clustered + pending + retracted == ingested,
        }

    # -- crash resume ----------------------------------------------------
    @classmethod
    def resume(cls, scorer, wal: WriteAheadLog, blocker=None,
               config: ResolveConfig = ResolveConfig(),
               store: Optional[ClusterStore] = None,
               quarantine=None) -> "StreamingResolver":
        """Rebuild the exact pre-crash state from ``wal`` and continue.

        Logged resolutions re-apply their edges verbatim (bitwise
        provenance); records released but unresolved at the crash are
        re-scored live after the replay, in release order.
        """
        entries = wal.replay()
        resolver = cls(scorer, blocker=blocker, config=config, wal=None,
                       store=store)
        logged: Dict[str, Dict[str, object]] = {}
        for entry in entries:
            if entry.get("type") == "resolve":
                logged[str(entry["uid"])] = entry
        for entry in entries:
            kind = entry.get("type")
            if kind == "arrive":
                resolver._replay_arrive(entry, logged)
            elif kind == "retract":
                resolver._replay_retract(entry)
        with resolver._lock:
            resolver.wal = wal
        resolver._pump()  # re-score released-but-unresolved records live
        if quarantine is not None:
            quarantine.subscribe(resolver._on_retraction)
        return resolver

    def _replay_arrive(self, entry: Dict[str, object],
                       logged: Dict[str, Dict[str, object]]) -> None:
        record = _record_from(entry["record"])
        seq = int(entry["seq"])
        to_apply: List[Tuple[Entity, List[ScoredEdge]]] = []
        with self._lock:
            if record.uid in self._seen:
                return
            self._seen.add(record.uid)
            self._ingested += 1
            self._pending += 1
            self._auto_seq = max(self._auto_seq, seq + 1)
            self._queue.extend(self._buffer.offer(seq, record))
            # Consume releases whose resolution was logged before the
            # crash; the first unlogged release stops the FIFO (live
            # re-scoring happens once the whole log is applied).
            while self._queue:
                uid = self._queue[0].record.uid
                if uid in self._dropped:
                    self._queue.pop(0)
                    self._dropped.discard(uid)
                    continue
                if uid not in logged:
                    break
                arrival = self._queue.pop(0)
                replayed = logged.pop(uid)
                to_apply.append((arrival.record,
                                 [ScoredEdge.from_dict(raw)
                                  for raw in replayed.get("edges", [])]))
                self._pending -= 1
                self._clustered += 1
                self._resolved.add(uid)
        for replay_record, edges in to_apply:
            self._apply_resolution(replay_record, edges)

    def _replay_retract(self, entry: Dict[str, object]) -> None:
        uid = str(entry["uid"])
        with self._lock:
            if uid not in self._seen or uid in self._retracted:
                return
            resolved = uid in self._resolved
            if resolved:
                self._resolved.discard(uid)
                self._clustered -= 1
            else:
                self._dropped.add(uid)
                self._pending -= 1
            self._retracted.add(uid)
            self._retracted_n += 1
        if resolved:
            self.store.retract(uid)
