"""Offline batch clustering reference + exact-match partition metrics.

The correctness harness for streaming collective resolution: generate the
same thresholded edges a streaming run would see (same blocker state
evolution, same scorer, same thresholds), then cluster them in one batch
— match-connected components, each component's canonical constrained
partition computed once by :func:`~repro.resolve.store.greedy_partition`.
Because the streaming store maintains exactly that partition
incrementally, ``streaming == offline`` is asserted as *exact* partition
equality, not a similarity score.

Also here: pairwise precision/recall/F1 and the exact-cluster match rate
against ground-truth clusters (built from the multi-source generator's
truth pairs), the standard ER clustering metrics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.data.schema import Entity, EntityPair
from repro.resolve.events import ScoredEdge
from repro.resolve.store import edge_key, greedy_partition
from repro.resolve.stream import ResolveConfig

Partition = Tuple[Tuple[str, ...], ...]


def generate_stream_edges(records: Sequence[Entity], scorer, blocker,
                          config: ResolveConfig = ResolveConfig()
                          ) -> List[ScoredEdge]:
    """The exact edge sequence a streaming run over ``records`` produces.

    Mirrors the resolver's per-record loop — candidates from the index
    built so far, score, threshold, then index the record — without any
    incremental cluster maintenance.
    """
    edges: List[ScoredEdge] = []
    for record in records:
        indexed = blocker.records
        candidates = blocker.candidates(record, k=config.candidates_k)
        partners = [indexed[j] for j in candidates
                    if indexed[j].uid != record.uid]
        if partners:
            pairs = [EntityPair(left=record, right=partner, label=0)
                     for partner in partners]
            scores = np.asarray(scorer.scores(pairs), dtype=np.float64)
            tier = str(getattr(scorer, "tier", "scorer"))
            params_version = str(getattr(scorer, "params_version", "v0"))
            for partner, score in zip(partners, scores):
                if score >= config.match_threshold:
                    kind = "match"
                elif score <= config.nonmatch_threshold:
                    kind = "nonmatch"
                else:
                    continue
                edges.append(ScoredEdge(
                    u=record.uid, v=partner.uid, score=float(score),
                    kind=kind, tier=tier, params_version=params_version))
        blocker.add(record)
    return edges


def offline_partition(uids: Iterable[str], edges: Sequence[ScoredEdge],
                      seed: int = 0) -> Partition:
    """Batch-cluster ``uids`` over ``edges`` in one pass.

    Match-connected components via BFS; unconstrained components collapse
    to one cluster, constrained ones take their canonical greedy
    partition.  Records without edges stay singletons.
    """
    nodes: Set[str] = set(uids)
    match_scores: Dict[Tuple[str, str], float] = {}
    nonmatch_keys: Set[Tuple[str, str]] = set()
    adjacency: Dict[str, Set[str]] = {uid: set() for uid in nodes}
    for edge in edges:
        nodes.add(edge.u)
        nodes.add(edge.v)
        adjacency.setdefault(edge.u, set())
        adjacency.setdefault(edge.v, set())
        if edge.kind == "match":
            match_scores[edge.key] = edge.score
            adjacency[edge.u].add(edge.v)
            adjacency[edge.v].add(edge.u)
        else:
            nonmatch_keys.add(edge.key)
    assignment: Dict[str, str] = {}
    seen: Set[str] = set()
    for start in sorted(nodes):
        if start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbour in sorted(adjacency[node]):
                if neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        seen |= component
        constraints = {key for key in nonmatch_keys
                       if key[0] in component and key[1] in component}
        if constraints:
            scores = {key: score for key, score in match_scores.items()
                      if key[0] in component and key[1] in component}
            assignment.update(
                greedy_partition(component, scores, constraints, seed))
        else:
            root = min(component)
            for member in component:
                assignment[member] = root
    by_cluster: Dict[str, List[str]] = {}
    for uid in sorted(assignment):
        by_cluster.setdefault(assignment[uid], []).append(uid)
    return tuple(tuple(members) for _, members in sorted(by_cluster.items()))


def truth_partition(uids: Iterable[str],
                    truth_pairs: Iterable[Tuple[str, str]]) -> Partition:
    """Ground-truth clusters: connected components of the truth pairs."""
    edges = [ScoredEdge(u=a, v=b, score=1.0, kind="match", tier="truth",
                        params_version="truth")
             for a, b in truth_pairs]
    return offline_partition(uids, edges)


def partitions_equal(left: Partition, right: Partition) -> bool:
    """Exact partition equality (the streaming == offline gate)."""
    return set(left) == set(right)


def _pair_set(partition: Partition) -> Set[Tuple[str, str]]:
    pairs: Set[Tuple[str, str]] = set()
    for cluster in partition:
        members = sorted(cluster)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                pairs.add(edge_key(a, b))
    return pairs


def partition_metrics(predicted: Partition,
                      truth: Partition) -> Dict[str, float]:
    """Pairwise P/R/F1 plus the exact-cluster match rate."""
    predicted_pairs = _pair_set(predicted)
    truth_pairs = _pair_set(truth)
    hits = len(predicted_pairs & truth_pairs)
    precision = hits / len(predicted_pairs) if predicted_pairs else 1.0
    recall = hits / len(truth_pairs) if truth_pairs else 1.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    exact = len(set(predicted) & set(truth))
    return {
        "pairwise_precision": precision,
        "pairwise_recall": recall,
        "pairwise_f1": f1,
        "exact_cluster_match_rate": exact / len(truth) if truth else 1.0,
        "predicted_clusters": float(len(predicted)),
        "truth_clusters": float(len(truth)),
    }
