"""Typed stream events and the bounded reorder buffer.

The streaming resolver consumes a record stream that may arrive out of
order (multi-source ingestion interleaves shards with different lags).
:class:`ReorderBuffer` restores sequence order under a hard capacity
bound: contiguous runs release as soon as they complete, and when the
buffer would exceed its capacity the smallest buffered sequence number is
force-released past the gap (late stragglers for a skipped slot release
immediately on arrival).  The release order is a pure function of the
arrival order, which is what lets the WAL replay reconstruct the exact
pre-crash buffer state (see :mod:`repro.resolve.wal`).

:class:`ScoredEdge` is the unit of clustering provenance: one thresholded
pairwise decision with the score, the decision kind, and the serving tier
and parameter version that produced it.  Edges are what the WAL logs,
what the cluster store retains per merge, and what a retraction removes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.data.schema import Entity

#: Edge decision kinds: ``match`` (score above the match threshold) and
#: ``nonmatch`` (score below the non-match threshold — a transitivity
#: constraint).  Mid-band scores produce no edge (the scorer abstains).
EDGE_KINDS = ("match", "nonmatch")


@dataclasses.dataclass(frozen=True)
class ScoredEdge:
    """One thresholded pairwise decision, with full provenance."""

    u: str
    v: str
    score: float
    kind: str
    tier: str = "scorer"
    params_version: str = "v0"

    def __post_init__(self):
        if self.kind not in EDGE_KINDS:
            raise ValueError(
                f"unknown edge kind {self.kind!r}; choose from {EDGE_KINDS}")

    @property
    def key(self) -> Tuple[str, str]:
        """Canonical undirected key: endpoints in sorted order."""
        return (self.u, self.v) if self.u <= self.v else (self.v, self.u)

    def to_dict(self) -> Dict[str, object]:
        return {"u": self.u, "v": self.v, "score": self.score,
                "kind": self.kind, "tier": self.tier,
                "params_version": self.params_version}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ScoredEdge":
        return cls(u=str(raw["u"]), v=str(raw["v"]),
                   score=float(raw["score"]), kind=str(raw["kind"]),
                   tier=str(raw.get("tier", "scorer")),
                   params_version=str(raw.get("params_version", "v0")))


@dataclasses.dataclass(frozen=True)
class RecordArrival:
    """One stream arrival: a sequence number plus the record itself."""

    seq: int
    record: Entity


class ReorderBuffer:
    """Bounded buffer releasing records in sequence order.

    Not internally locked: the owning resolver serializes access under
    its ``resolve.stream`` lock.  Behaviour contract (all deterministic
    in the arrival order):

    * a contiguous run starting at ``next_seq`` releases immediately;
    * once more than ``capacity`` records are held behind a gap, the
      smallest held sequence number is force-released and the gap is
      skipped (``next_seq`` jumps forward);
    * an arrival for an already-skipped slot (``seq < next_seq``)
      releases immediately, by itself.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._held: Dict[int, Entity] = {}
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._held)

    @property
    def next_seq(self) -> int:
        """The next sequence number an in-order release is waiting on."""
        return self._next_seq

    def offer(self, seq: int, record: Entity) -> List[RecordArrival]:
        """Accept one arrival; returns the releases it unlocks, in order."""
        seq = int(seq)
        if seq < self._next_seq:
            # Late arrival for a slot that was already force-released past.
            return [RecordArrival(seq, record)]
        self._held[seq] = record
        released: List[RecordArrival] = []
        self._release_contiguous(released)
        while len(self._held) > self.capacity:
            # A gap is blocking an over-full buffer: skip to the smallest
            # held sequence and release the run it starts.
            self._next_seq = min(self._held)
            self._release_contiguous(released)
        return released

    def drain(self) -> List[RecordArrival]:
        """Release everything held, in sequence order (stream shutdown)."""
        released = [RecordArrival(seq, self._held[seq])
                    for seq in sorted(self._held)]
        self._held.clear()
        if released:
            self._next_seq = max(released[-1].seq + 1, self._next_seq)
        return released

    def _release_contiguous(self, out: List[RecordArrival]) -> None:
        while self._next_seq in self._held:
            out.append(RecordArrival(self._next_seq,
                                     self._held.pop(self._next_seq)))
            self._next_seq += 1
