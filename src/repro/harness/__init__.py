"""Experiment harness: one runner per table/figure of the paper (Section 6).

Each ``run_*`` function regenerates the rows/series of one table or figure at
the active :class:`repro.config.Scale` and returns a
:class:`~repro.harness.tables.TableResult` whose ``render()`` prints the same
layout the paper reports.  ``EXPERIMENTS`` maps experiment ids to runners.
"""

from repro.harness.tables import TableResult
from repro.harness.datasets_tables import run_table1_dataset_stats, run_table2_wdc_sizes
from repro.harness.pairwise import (
    run_figure9_attention,
    run_figure10_wdc,
    run_figure11_training_time,
    run_table3_language_models,
    run_table4_magellan,
)
from repro.harness.robustness import run_robustness_curve
from repro.harness.collective import (
    run_table5_table6_statistics,
    run_table7_collective,
    run_table8_collective_lms,
    run_table9_context_ablation,
    run_table10_multiview,
    run_table11_components,
)

EXPERIMENTS = {
    "table1": run_table1_dataset_stats,
    "table2": run_table2_wdc_sizes,
    "table3": run_table3_language_models,
    "table4": run_table4_magellan,
    "table5_6": run_table5_table6_statistics,
    "table7": run_table7_collective,
    "table8": run_table8_collective_lms,
    "table9": run_table9_context_ablation,
    "table10": run_table10_multiview,
    "table11": run_table11_components,
    "figure9": run_figure9_attention,
    "figure10": run_figure10_wdc,
    "figure11": run_figure11_training_time,
    "robust": run_robustness_curve,
}

__all__ = ["TableResult", "EXPERIMENTS"] + sorted(
    name for name in dir() if name.startswith("run_")
)
