"""Result-table formatting shared by all experiment runners, plus the
fault-tolerant cell executor every sweep uses: one crashed model/dataset
cell degrades to a ``-`` placeholder instead of forfeiting the whole table."""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from repro.reliability.counters import COUNTERS
from repro.reliability.faults import CorruptDataFault, TrainingKilled, fault_point
from repro.reliability.retry import retry_with_backoff


def resilient_cell(fn: Callable[[], float],
                   description: str = "") -> Optional[float]:
    """Run one experiment cell with retry/degrade semantics.

    Transient IO faults are retried with capped backoff; any other failure
    degrades the cell to ``None`` — rendered as ``-`` by :func:`fmt` — and
    increments ``COUNTERS.harness_cell_failures``.  A days-long sweep
    therefore survives a single poisoned dataset or diverging model.
    ``TrainingKilled`` is re-raised: a simulated process death must stop
    the run (resume handles it), not hide inside a blank cell.
    """
    def attempt() -> float:
        if fault_point("harness.cell", description=description) == "corrupt":
            raise CorruptDataFault(f"injected corrupt cell {description!r}")
        return fn()

    try:
        return retry_with_backoff(attempt, description=description)
    except TrainingKilled:
        raise
    except Exception:
        COUNTERS.increment("harness_cell_failures")
        return None


@dataclasses.dataclass
class TableResult:
    """One reproduced table/figure: headers, rows, and provenance notes."""

    experiment: str
    title: str
    headers: List[str]
    rows: List[List[str]]
    notes: List[str] = dataclasses.field(default_factory=list)

    def cell(self, row_label: str, column: str) -> str:
        """Look up a value by row label (first column) and column header."""
        try:
            col = self.headers.index(column)
        except ValueError as exc:
            raise KeyError(f"no column {column!r} in {self.headers}") from exc
        for row in self.rows:
            if row[0] == row_label:
                return row[col]
        raise KeyError(f"no row {row_label!r}")

    def column(self, column: str) -> List[str]:
        col = self.headers.index(column)
        return [row[col] for row in self.rows]

    def render(self) -> str:
        """Fixed-width text rendering, paper-style."""
        table = [self.headers] + self.rows
        widths = [max(len(str(r[i])) for r in table) for i in range(len(self.headers))]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def fmt(value: Optional[float], digits: int = 1) -> str:
    """Format an F1/number the way the paper prints them (e.g. ``93.3``)."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def numeric(cells: Sequence[str]) -> List[float]:
    """Parse rendered cells back to floats, skipping '-' placeholders."""
    return [float(c) for c in cells if c not in ("-", "")]
