"""Tables 1–2: dataset statistics, regenerated from our synthetic benchmarks.

Table 1 summarises the Magellan datasets (domain, size, positives, attribute
count); Table 2 the WDC training-set size ladder.  For the synthetic
equivalents we report both the paper's published values and the generated
values at the active scale, so the proportionality is auditable.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import Scale, get_scale
from repro.data.magellan import DIRTY_DATASETS, MAGELLAN_DATASETS, load_dataset
from repro.data.wdc import PAPER_SIZES, WDC_DOMAINS, WDC_SIZES, scaled_train_size
from repro.harness.tables import TableResult, fmt


def run_table1_dataset_stats(scale: Optional[Scale] = None) -> TableResult:
    """Table 1: the Magellan benchmark characteristics (paper vs generated)."""
    scale = scale or get_scale()
    rows: List[List[str]] = []
    for name, info in MAGELLAN_DATASETS.items():
        dataset = load_dataset(name, scale=scale)
        rows.append([
            name + ("*" if name in DIRTY_DATASETS else ""),
            info.domain,
            str(info.size),
            str(info.positives),
            str(len(info.spec.attributes)),
            str(dataset.size),
            str(dataset.num_positives),
            fmt(100 * dataset.positive_ratio),
        ])
    return TableResult(
        experiment="Table 1",
        title="Datasets from Magellan (paper vs generated at current scale)",
        headers=["Dataset", "Domain", "Size(paper)", "#Pos(paper)", "#Attr",
                 "Size(gen)", "#Pos(gen)", "%Pos(gen)"],
        rows=rows,
        notes=["* has a dirty variant",
               "paper positive ratios range 9.4%-25%; generated ratios track them"],
    )


def run_table2_wdc_sizes(scale: Optional[Scale] = None) -> TableResult:
    """Table 2: WDC training-set sizes (paper ladder vs scaled ladder)."""
    scale = scale or get_scale()
    rows: List[List[str]] = []
    for domain in WDC_DOMAINS:
        row = [domain]
        for size in WDC_SIZES:
            row.append(f"{PAPER_SIZES[domain][size]}/"
                       f"{scaled_train_size(domain, size, scale)}")
        rows.append(row)
    all_row = ["All"]
    for size in WDC_SIZES:
        paper_total = sum(PAPER_SIZES[d][size] for d in WDC_DOMAINS)
        scaled_total = sum(scaled_train_size(d, size, scale) for d in WDC_DOMAINS)
        all_row.append(f"{paper_total}/{scaled_total}")
    rows.append(all_row)
    return TableResult(
        experiment="Table 2",
        title="Datasets from WDC (paper size / scaled size)",
        headers=["Dataset"] + list(WDC_SIZES),
        rows=rows,
        notes=["the geometric shape of the ladder is preserved; Figure 10 "
               "sweeps these training sizes against a fixed test set"],
    )
