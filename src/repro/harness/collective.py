"""Collective-ER experiments: Tables 5–11.

The collective benchmarks are rebuilt with the split-before-blocking policy
of Section 6.3 (test queries unseen in training).  Pairwise baselines run on
the flattened query–candidate pairs; HierGAT+ scores each candidate set in
one graph.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.config import Scale, get_scale
from repro.core.context import ContextFlags
from repro.core.hiergat import HierGAT, HierGATConfig, HierGATPlus
from repro.data.collective import COLLECTIVE_MAGELLAN, CollectiveDataset, load_collective
from repro.data.di2kg import DI2KG_CATEGORIES, NUM_TABLES, load_di2kg_tables
from repro.data.schema import PairDataset, Split
from repro.harness.tables import TableResult, fmt
from repro.lm.registry import LM_SWEEP
from repro.matchers.base import Matcher
from repro.matchers.ditto import DittoModel
from repro.matchers.dmplus import DMPlusMatcher
from repro.matchers.graph import GATMatcher, GCNMatcher, HGATMatcher
from repro.matchers.magellan import MagellanMatcher

#: The paper's Table 7 model line-up, in column order.
COLLECTIVE_MODELS: Dict[str, Callable[[], Matcher]] = {
    "MG": MagellanMatcher,
    "DM+": DMPlusMatcher,
    "GCN": GCNMatcher,
    "GAT": GATMatcher,
    "HGAT": HGATMatcher,
    "Ditto": DittoModel,
    "HG": HierGAT,
}

#: Default dataset subset for quick collective runs.
QUICK_COLLECTIVE = ("Amazon-Google", "Walmart-Amazon")


def collective_as_pairdataset(dataset: CollectiveDataset) -> PairDataset:
    """Flatten a collective benchmark so pairwise matchers can train on it."""
    split = Split(train=dataset.pairs("train"), valid=dataset.pairs("valid"),
                  test=dataset.pairs("test"))
    num_attrs = min(len(q.query.attributes) for q in dataset.all_queries())
    return PairDataset(name=dataset.name, domain=dataset.name,
                       pairs=split.all_pairs(), split=split,
                       num_attributes=num_attrs)


def load_collective_dataset(name: str, scale: Scale) -> CollectiveDataset:
    """Load a Magellan collective benchmark or a DI2KG category."""
    if name in DI2KG_CATEGORIES:
        return load_di2kg_tables(name, scale=scale)
    return load_collective(name, scale=scale)


def _evaluate_collective_model(model_name: str, dataset: CollectiveDataset,
                               flat: PairDataset) -> float:
    if model_name == "HG+":
        matcher = HierGATPlus()
        matcher.fit(dataset)
        return matcher.test_f1_collective(dataset)
    matcher = COLLECTIVE_MODELS[model_name]()
    matcher.fit(flat)
    return matcher.test_f1(flat)


def run_table7_collective(datasets: Optional[Sequence[str]] = None,
                          models: Optional[Sequence[str]] = None,
                          scale: Optional[Scale] = None) -> TableResult:
    """Table 7: collective ER F1 for all models (Magellan + DI2KG data)."""
    scale = scale or get_scale()
    datasets = list(datasets or QUICK_COLLECTIVE)
    models = list(models or (list(COLLECTIVE_MODELS) + ["HG+"]))

    rows: List[List[str]] = []
    for name in datasets:
        dataset = load_collective_dataset(name, scale)
        flat = collective_as_pairdataset(dataset)
        scores: Dict[str, float] = {}
        for model_name in models:
            if model_name == "MG" and name in DI2KG_CATEGORIES:
                scores[model_name] = None  # paper: Magellan needs exactly 2 tables
                continue
            scores[model_name] = _evaluate_collective_model(model_name, dataset, flat)
        row = [name] + [fmt(scores.get(m)) for m in models]
        if "HG+" in scores and scores["HG+"] is not None:
            others = [v for k, v in scores.items() if k != "HG+" and v is not None]
            row.append(fmt(scores["HG+"] - max(others)) if others else "-")
        rows.append(row)
    headers = ["Dataset"] + models + (["ΔF1"] if "HG+" in models else [])
    return TableResult(
        experiment="Table 7",
        title="Collective ER results (HierGAT+ vs baselines)",
        headers=headers,
        rows=rows,
        notes=["split-before-blocking: test queries unseen in training"],
    )


def run_table8_collective_lms(datasets: Optional[Sequence[str]] = None,
                              language_models: Optional[Sequence[str]] = None,
                              scale: Optional[Scale] = None) -> TableResult:
    """Table 8: Ditto vs HG vs HG+ across language models (collective data)."""
    scale = scale or get_scale()
    datasets = list(datasets or ("Amazon-Google",))
    language_models = list(language_models or LM_SWEEP)

    headers = ["Dataset"]
    for lm in language_models:
        headers += [f"Ditto/{lm}", f"HG/{lm}", f"HG+/{lm}"]
    rows: List[List[str]] = []
    for name in datasets:
        dataset = load_collective_dataset(name, scale)
        flat = collective_as_pairdataset(dataset)
        row = [name]
        for lm in language_models:
            ditto = DittoModel(language_model=lm)
            ditto.fit(flat)
            hg = HierGAT(language_model=lm)
            hg.fit(flat)
            hgp = HierGATPlus(language_model=lm)
            hgp.fit(dataset)
            row += [fmt(ditto.test_f1(flat)), fmt(hg.test_f1(flat)),
                    fmt(hgp.test_f1_collective(dataset))]
        rows.append(row)
    return TableResult(
        experiment="Table 8",
        title="Collective F1 across language models",
        headers=headers,
        rows=rows,
    )


def run_table5_table6_statistics(scale: Optional[Scale] = None) -> TableResult:
    """Tables 5–6: sizes of the collective benchmarks we construct."""
    scale = scale or get_scale()
    rows: List[List[str]] = []
    for name in COLLECTIVE_MAGELLAN:
        dataset = load_collective(name, scale=scale)
        queries = dataset.all_queries()
        rows.append([
            name, "2", str(len(queries)), str(dataset.total_candidates),
            str(dataset.candidate_count),
            fmt(100 * sum(q.num_positives > 0 for q in queries) / max(len(queries), 1)),
        ])
    for category in DI2KG_CATEGORIES:
        dataset = load_di2kg_tables(category, scale=scale)
        queries = dataset.all_queries()
        rows.append([
            f"DI2KG-{category}", str(NUM_TABLES[category]), str(len(queries)),
            str(dataset.total_candidates), str(dataset.candidate_count),
            fmt(100 * sum(q.num_positives > 0 for q in queries) / max(len(queries), 1)),
        ])
    return TableResult(
        experiment="Tables 5-6",
        title="Collective benchmark construction statistics",
        headers=["Dataset", "#tables(paper)", "#queries", "#candidates",
                 "top-N", "%queries w/ match"],
        rows=rows,
        notes=["paper: TF-IDF cosine top-16 blocking filters ~40% of negatives"],
    )


# ----------------------------------------------------------------------
# Ablations (Tables 9-11)
# ----------------------------------------------------------------------
def _hgplus_f1(dataset: CollectiveDataset, config: HierGATConfig) -> float:
    matcher = HierGATPlus(config=config)
    matcher.fit(dataset)
    return matcher.test_f1_collective(dataset)


def run_table9_context_ablation(datasets: Optional[Sequence[str]] = None,
                                scale: Optional[Scale] = None) -> TableResult:
    """Table 9: WpC context levels (full / non-entity / non-attribute / none)."""
    scale = scale or get_scale()
    datasets = list(datasets or ("Amazon-Google",))
    variants = [
        ("Context", ContextFlags(token=True, attribute=True, entity=True)),
        ("Non-Entity", ContextFlags(token=True, attribute=True, entity=False)),
        ("Non-Attribute", ContextFlags(token=True, attribute=False, entity=True)),
        ("Non-Context", ContextFlags(token=False, attribute=False, entity=False)),
    ]
    rows: List[List[str]] = []
    loaded = {name: load_collective_dataset(name, scale) for name in datasets}
    for label, flags in variants:
        row = [label]
        for name in datasets:
            config = HierGATConfig(context=flags)
            row.append(fmt(_hgplus_f1(loaded[name], config)))
        rows.append(row)
    return TableResult(
        experiment="Table 9",
        title="F1 with vs without contextual information (HierGAT+)",
        headers=["Variant"] + datasets,
        rows=rows,
    )


def run_table10_multiview(datasets: Optional[Sequence[str]] = None,
                          scale: Optional[Scale] = None) -> TableResult:
    """Table 10: multi-view combination (view avg / shared space / weight avg)."""
    scale = scale or get_scale()
    datasets = list(datasets or ("Amazon-Google",))
    variants = [
        ("View Average", "view_average"),
        ("Shared Space Learn", "shared_space"),
        ("Weight Average", "weight_average"),
    ]
    rows: List[List[str]] = []
    loaded = {name: load_collective_dataset(name, scale) for name in datasets}
    for label, mode in variants:
        row = [label]
        for name in datasets:
            config = HierGATConfig(comparison_mode=mode)
            row.append(fmt(_hgplus_f1(loaded[name], config)))
        rows.append(row)
    return TableResult(
        experiment="Table 10",
        title="F1 of different attribute summarizations (multi-view)",
        headers=["Method"] + datasets,
        rows=rows,
    )


def run_table11_components(datasets: Optional[Sequence[str]] = None,
                           scale: Optional[Scale] = None) -> TableResult:
    """Table 11: comparison-module ablation (full / non-sum / non-align)."""
    scale = scale or get_scale()
    datasets = list(datasets or ("Amazon-Google",))
    variants = [
        ("HG+", HierGATConfig()),
        ("Non-Sum", HierGATConfig(use_entity_summarization=False)),
        ("Non-Align", HierGATConfig(use_alignment=False)),
    ]
    rows: List[List[str]] = []
    loaded = {name: load_collective_dataset(name, scale) for name in datasets}
    for label, config in variants:
        row = [label]
        for name in datasets:
            row.append(fmt(_hgplus_f1(loaded[name], config)))
        rows.append(row)
    return TableResult(
        experiment="Table 11",
        title="F1 of aggregation and comparison modules (HierGAT+)",
        headers=["Method"] + datasets,
        rows=rows,
    )
