"""Markdown report generation: render experiment results next to the paper's
numbers (the machinery behind EXPERIMENTS.md).

``PAPER_REFERENCE`` records the key published values so a report can show
paper-vs-measured side by side and check the qualitative *shape* claims
(orderings, gaps) that the reproduction targets.
"""

from __future__ import annotations

import dataclasses
import datetime
from typing import Dict, Optional, Sequence

from repro.config import Scale, get_scale
from repro.harness.tables import TableResult

#: Selected published values (full tables are in the paper; these anchor the
#: shape checks).  Format: experiment -> description -> value.
PAPER_REFERENCE: Dict[str, Dict[str, float]] = {
    "table4": {
        "Fodors-Zagats HG": 100.0, "Fodors-Zagats Magellan": 100.0,
        "Amazon-Google Magellan": 49.1, "Amazon-Google DM": 69.3,
        "Amazon-Google Ditto": 74.1, "Amazon-Google HG": 76.4,
        "Beer HG": 93.3, "DBLP-ACM HG": 99.1,
        "Walmart-Amazon HG": 88.2, "Abt-Buy HG": 89.8,
    },
    "table7": {
        "Amazon-Google Ditto": 77.6, "Amazon-Google HG": 78.0,
        "Amazon-Google HG+": 83.1, "Walmart-Amazon HG+": 92.3,
        "camera HG+": 99.4, "monitor HG+": 99.6,
    },
    "table9": {
        "Context A-G": 83.1, "Non-Entity A-G": 82.1,
        "Non-Attribute A-G": 81.9, "Non-Context A-G": 81.4,
    },
    "table10": {
        "View Average A-G": 75.1, "Shared Space Learn A-G": 74.4,
        "Weight Average A-G": 83.1,
    },
    "table11": {
        "HG+ A-G": 83.1, "Non-Sum A-G": 82.6, "Non-Align A-G": 77.1,
    },
}


@dataclasses.dataclass
class ShapeCheck:
    """One qualitative claim from the paper and whether we reproduce it."""

    claim: str
    holds: bool
    detail: str = ""

    def render(self) -> str:
        mark = "✓" if self.holds else "✗"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"- [{mark}] {self.claim}{suffix}"


def check_ordering(result: TableResult, row: str, better: str, worse: str,
                   claim: Optional[str] = None) -> ShapeCheck:
    """Check ``result[row][better] >= result[row][worse]``."""
    try:
        b = float(result.cell(row, better))
        w = float(result.cell(row, worse))
    except (KeyError, ValueError) as exc:
        return ShapeCheck(claim or f"{better} ≥ {worse} on {row}", False, str(exc))
    return ShapeCheck(
        claim or f"{better} ≥ {worse} on {row}",
        holds=b >= w,
        detail=f"{b:.1f} vs {w:.1f}",
    )


def check_column_ordering(result: TableResult, better_row: str, worse_row: str,
                          column: str, claim: Optional[str] = None) -> ShapeCheck:
    """Check row-vs-row ordering within one column (ablation tables)."""
    try:
        b = float(result.cell(better_row, column))
        w = float(result.cell(worse_row, column))
    except (KeyError, ValueError) as exc:
        return ShapeCheck(claim or f"{better_row} ≥ {worse_row}", False, str(exc))
    return ShapeCheck(
        claim or f"{better_row} ≥ {worse_row} ({column})",
        holds=b >= w,
        detail=f"{b:.1f} vs {w:.1f}",
    )


def render_markdown_report(results: Dict[str, TableResult],
                           checks: Sequence[ShapeCheck] = (),
                           scale: Optional[Scale] = None) -> str:
    """Full markdown report: environment, tables, shape-check scoreboard."""
    scale = scale or get_scale()
    lines = [
        f"Generated {datetime.date.today().isoformat()} at scale: "
        f"dim={scale.hidden_dim}, layers={scale.num_layers}, "
        f"max_pairs={scale.max_pairs}, epochs={scale.epochs}.",
        "",
    ]
    if checks:
        passed = sum(1 for c in checks if c.holds)
        lines.append(f"## Shape checks ({passed}/{len(checks)} hold)")
        lines.extend(check.render() for check in checks)
        lines.append("")
    for exp_id, result in results.items():
        lines.append(f"## {result.experiment}: {result.title}")
        lines.append("")
        lines.append("| " + " | ".join(result.headers) + " |")
        lines.append("|" + "|".join("---" for _ in result.headers) + "|")
        for row in result.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        reference = PAPER_REFERENCE.get(exp_id)
        if reference:
            lines.append("")
            lines.append("Paper anchors: " + ", ".join(
                f"{k}={v}" for k, v in reference.items()))
        for note in result.notes:
            lines.append(f"\n*{note}*")
        lines.append("")
    return "\n".join(lines)
