"""Pairwise-ER experiments: Tables 3–4, Figures 9–11.

Every runner takes optional ``datasets``/``models`` subsets so the benchmark
suite can trade coverage for wall-clock; defaults reproduce the full paper
selection at the active scale.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.config import Scale, get_scale
from repro.core.hiergat import HierGAT
from repro.data.magellan import DIRTY_DATASETS, MAGELLAN_DATASETS, load_dataset
from repro.data.schema import PairDataset
from repro.data.wdc import WDC_SIZES, load_wdc
from repro.harness.tables import TableResult, fmt, resilient_cell
from repro.lm.registry import LM_SWEEP
from repro.matchers.base import Matcher, evaluate_matcher
from repro.matchers.deeper import DeepERModel
from repro.matchers.deepmatcher import DeepMatcherModel
from repro.matchers.ditto import DittoModel
from repro.matchers.magellan import MagellanMatcher
from repro.perf.profiler import wall_clock

#: The paper's Table 4 model line-up, in column order.
PAIRWISE_MODELS: Dict[str, Callable[[], Matcher]] = {
    "Magellan": MagellanMatcher,
    "DeepER": DeepERModel,   # reference [6]; not a Table 4 column but useful
    "DM": DeepMatcherModel,
    "Ditto": DittoModel,
    "HG": HierGAT,
}

#: The exact Table 4 column order.
TABLE4_MODELS = ("Magellan", "DM", "Ditto", "HG")

#: Default dataset subset for quick runs (small + one hard dataset).
QUICK_DATASETS = ("Beer", "iTunes-Amazon", "Fodors-Zagats", "Amazon-Google")


def _load(name: str, dirty: bool, scale: Scale) -> PairDataset:
    return load_dataset(name, scale=scale, dirty=dirty)


def run_table4_magellan(datasets: Optional[Sequence[str]] = None,
                        models: Optional[Sequence[str]] = None,
                        include_dirty: bool = True,
                        scale: Optional[Scale] = None) -> TableResult:
    """Table 4: F1 on the Magellan datasets (+ dirty variants)."""
    scale = scale or get_scale()
    datasets = list(datasets or MAGELLAN_DATASETS)
    models = list(models or TABLE4_MODELS)

    rows: List[List[str]] = []
    jobs = [(name, False) for name in datasets]
    if include_dirty:
        jobs += [(name, True) for name in datasets if name in DIRTY_DATASETS]
    for name, dirty in jobs:
        dataset = _load(name, dirty, scale)
        scores: Dict[str, Optional[float]] = {}
        for model_name in models:
            scores[model_name] = resilient_cell(
                lambda m=model_name: evaluate_matcher(PAIRWISE_MODELS[m](), dataset),
                description=f"table4:{name}:{model_name}")
        row = [name + (" (dirty)" if dirty else "")]
        row += [fmt(scores.get(m)) for m in models]
        if "HG" in models:
            baselines = [v for k, v in scores.items()
                         if k != "HG" and v is not None]
            hg = scores.get("HG")
            row.append(fmt(hg - max(baselines))
                       if baselines and hg is not None else "-")
        rows.append(row)
    headers = ["Dataset"] + models + (["ΔF1"] if "HG" in models else [])
    return TableResult(
        experiment="Table 4",
        title="F1 scores on the Magellan datasets",
        headers=headers,
        rows=rows,
        notes=[f"scale: max_pairs={scale.max_pairs}, epochs={scale.epochs}, "
               f"dim={scale.hidden_dim}"],
    )


def run_table3_language_models(datasets: Optional[Sequence[str]] = None,
                               language_models: Optional[Sequence[str]] = None,
                               scale: Optional[Scale] = None) -> TableResult:
    """Table 3: Ditto vs HierGAT across language-model sizes."""
    scale = scale or get_scale()
    datasets = list(datasets or QUICK_DATASETS)
    language_models = list(language_models or LM_SWEEP)

    headers = ["Dataset"]
    for lm in language_models:
        headers += [f"Ditto/{lm}", f"HG/{lm}", f"Δ/{lm}"]
    rows: List[List[str]] = []
    for name in datasets:
        dataset = _load(name, False, scale)
        row = [name]
        for lm in language_models:
            ditto = resilient_cell(
                lambda lm=lm: evaluate_matcher(DittoModel(language_model=lm), dataset),
                description=f"table3:{name}:ditto/{lm}")
            hg = resilient_cell(
                lambda lm=lm: evaluate_matcher(HierGAT(language_model=lm), dataset),
                description=f"table3:{name}:hg/{lm}")
            delta = hg - ditto if (hg is not None and ditto is not None) else None
            row += [fmt(ditto), fmt(hg), fmt(delta)]
        rows.append(row)
    return TableResult(
        experiment="Table 3",
        title="F1 differences across language models (Ditto vs HierGAT)",
        headers=headers,
        rows=rows,
    )


def run_figure10_wdc(domains: Optional[Sequence[str]] = None,
                     sizes: Optional[Sequence[str]] = None,
                     models: Optional[Sequence[str]] = None,
                     scale: Optional[Scale] = None) -> TableResult:
    """Figure 10: F1 vs WDC training-set size (label efficiency)."""
    scale = scale or get_scale()
    domains = list(domains or ("computer", "camera"))
    sizes = list(sizes or WDC_SIZES)
    models = list(models or ("DM", "Ditto", "HG"))

    rows: List[List[str]] = []
    for domain in domains:
        for size in sizes:
            dataset = load_wdc(domain, size=size, scale=scale)
            row = [f"{domain}/{size}", str(len(dataset.split.train))]
            for model_name in models:
                row.append(fmt(resilient_cell(
                    lambda m=model_name: evaluate_matcher(PAIRWISE_MODELS[m](), dataset),
                    description=f"figure10:{domain}/{size}:{model_name}")))
            rows.append(row)
    return TableResult(
        experiment="Figure 10",
        title="F1 on WDC vs training-set size",
        headers=["Domain/Size", "#train"] + models,
        rows=rows,
        notes=["test set is fixed per domain; only the training size varies"],
    )


def run_figure11_training_time(datasets: Optional[Sequence[str]] = None,
                               models: Optional[Sequence[str]] = None,
                               scale: Optional[Scale] = None) -> TableResult:
    """Figure 11: training time vs dataset size × average record length."""
    scale = scale or get_scale()
    datasets = list(datasets or ("Fodors-Zagats", "Amazon-Google", "Abt-Buy"))
    models = list(models or ("DM", "Ditto", "HG"))

    rows: List[List[str]] = []
    for name in datasets:
        dataset = _load(name, False, scale)
        avg_len = np.mean([
            len(p.left.text().split()) + len(p.right.text().split())
            for p in dataset.pairs
        ])
        x_value = len(dataset.split.train) * avg_len
        row = [name, fmt(x_value, 0)]
        for model_name in models:
            matcher = PAIRWISE_MODELS[model_name]()
            started = wall_clock()
            matcher.fit(dataset)
            row.append(fmt(wall_clock() - started, 2))
        rows.append(row)
    return TableResult(
        experiment="Figure 11",
        title="Training time (s) vs dataset size × average length",
        headers=["Dataset", "size×len"] + models,
        rows=rows,
        notes=["paper reports HG+ ≈ +3.5% over HG; see table7 bench for HG+"],
    )


def run_figure9_attention(dataset: str = "Amazon-Google",
                          num_pairs: int = 3,
                          scale: Optional[Scale] = None) -> TableResult:
    """Figure 9: token/attribute attention visualisation for HierGAT."""
    from repro.core.attention_viz import attention_report

    scale = scale or get_scale()
    ds = _load(dataset, False, scale)
    matcher = HierGAT()
    matcher.fit(ds)
    rows: List[List[str]] = []
    for report in attention_report(matcher, ds.split.test[:num_pairs]):
        rows.append([report.pair_id, report.label, report.prediction,
                     report.top_tokens, report.top_attribute])
    return TableResult(
        experiment="Figure 9",
        title=f"Attention visualisation on {dataset}",
        headers=["Pair", "Label", "Pred", "Top tokens (attention)", "Top attribute"],
        rows=rows,
        notes=["darker colour in the paper = higher weight; here the ranked list"],
    )
