"""Hyper-parameter sweep utility.

Section 6.1 fixes the paper's hyper-parameters (lr 1e-5, 10 epochs, batch 16);
at reproduction scale those required re-tuning, and this utility makes such
tuning reproducible: a grid over :class:`~repro.core.trainer.TrainConfig`
fields evaluated by validation F1, reported as a :class:`TableResult`.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Dict, Optional, Sequence

from repro.config import Scale, get_scale
from repro.data.schema import PairDataset
from repro.harness.tables import TableResult, fmt
from repro.matchers.base import Matcher


def sweep_matcher(
    matcher_factory: Callable[[Scale], Matcher],
    dataset: PairDataset,
    grid: Dict[str, Sequence],
    scale: Optional[Scale] = None,
) -> TableResult:
    """Evaluate ``matcher_factory`` over a grid of Scale overrides.

    ``grid`` maps :class:`Scale` field names to candidate values, e.g.
    ``{"learning_rate": [5e-4, 1e-3], "epochs": [5, 10]}``.  Each combination
    trains one matcher; validation and test F1 are reported (select on
    validation, as the paper does).
    """
    scale = scale or get_scale()
    fields = {f.name for f in dataclasses.fields(Scale)}
    unknown = set(grid) - fields
    if unknown:
        raise KeyError(f"unknown Scale fields: {sorted(unknown)}")

    names = list(grid)
    rows = []
    best = (-1.0, None)
    for combo in itertools.product(*(grid[n] for n in names)):
        overrides = dict(zip(names, combo))
        run_scale = dataclasses.replace(scale, **overrides)
        matcher = matcher_factory(run_scale)
        matcher.fit(dataset)
        valid_f1 = (matcher.evaluate(dataset.split.valid).f1 * 100
                    if dataset.split.valid else 0.0)
        test_f1 = matcher.test_f1(dataset)
        label = ", ".join(f"{n}={v}" for n, v in overrides.items())
        rows.append([label, fmt(valid_f1), fmt(test_f1)])
        if valid_f1 > best[0]:
            best = (valid_f1, label)
    notes = [f"selected on validation: {best[1]}"] if best[1] else []
    return TableResult(
        experiment="Sweep",
        title=f"hyper-parameter sweep on {dataset.name}",
        headers=["Configuration", "valid F1", "test F1"],
        rows=rows,
        notes=notes,
    )
