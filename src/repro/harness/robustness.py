"""The corruption-robustness curve: F1 vs corruption rate, with firewall.

The paper's dirty-data comparison (Table 4's Dirty variants) is a single
point: attribute values swapped into the wrong columns.  This harness
reproduces its spirit as a *continuous curve*: test pairs are perturbed at
increasing rates with the full adversarial mix (typos, nulls, attribute
swaps, truncation, encoding garbage), routed through the data firewall,
and each matcher is scored on what survives.  Three series per matcher:

* **F1** on the accepted pairs — how gracefully accuracy degrades;
* **quarantine rate** — the fraction of offered records the firewall
  rejected (encoding garbage; identical across matchers by construction);
* **drift-flag rate** — the fraction of monitor windows that flagged,
  using a baseline frozen from the matcher's own fit (vocab + validation
  scores).

``benchmarks/run_robust.py`` serializes the raw series into
``BENCH_robust.json``; ``repro bench --experiment robust`` renders the
table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import Scale, get_scale
from repro.core.metrics import f1_score
from repro.data.magellan import load_dataset
from repro.data.schema import PairDataset
from repro.guard import (
    DataFirewall,
    DriftBaseline,
    DriftMonitor,
    DriftThresholds,
    RecordSchema,
    corrupt_pairs,
)
from repro.harness.tables import TableResult, fmt
from repro.matchers.base import labels_of

#: Matchers the benchmark compares (≥3, spanning the architecture range:
#: the paper's model, the token-serialization baseline, and the classical
#: feature matcher).
DEFAULT_MATCHERS: Tuple[str, ...] = ("hiergat", "ditto", "magellan")

#: Corruption rates forming the curve.
DEFAULT_RATES: Tuple[float, ...] = (0.0, 0.2, 0.4)


def _make_matcher(name: str):
    from repro.core import HierGAT
    from repro.matchers import DittoModel, MagellanMatcher

    factories = {"hiergat": HierGAT, "ditto": DittoModel,
                 "magellan": MagellanMatcher}
    if name not in factories:
        raise KeyError(f"unknown matcher {name!r}; known: {sorted(factories)}")
    return factories[name]()


def robustness_series(dataset_name: str = "Beer",
                      matchers: Sequence[str] = DEFAULT_MATCHERS,
                      rates: Sequence[float] = DEFAULT_RATES,
                      seed: int = 7,
                      scale: Optional[Scale] = None,
                      window: int = 32) -> Tuple[PairDataset, List[Dict]]:
    """Compute the raw curve: one entry per matcher, one point per rate.

    Corruption is a pure function of ``seed`` and the rate index (every
    matcher sees the *same* corrupted pairs at a given rate, so their F1
    columns are comparable and the quarantine column is shared).
    """
    scale = scale or get_scale()
    dataset = load_dataset(dataset_name, scale=scale)
    # A window must fill to be evaluated; at small scales the test split is
    # shorter than the serving default, so clamp to the score-stream length
    # (one pair = one score, two entities).
    window = max(8, min(window, len(dataset.split.test)))
    series: List[Dict] = []
    for name in matchers:
        matcher = _make_matcher(name)
        matcher.fit(dataset)
        # Score baseline over the whole dataset, matching from_dataset's
        # all-pairs input baseline: clean test traffic is then a subsample
        # of the frozen distribution and must not flag (valid-only scores
        # mis-flag at small scales where both samples are tiny).
        base_scores = matcher.scores(dataset.pairs)
        vocab = getattr(getattr(matcher, "_encoder", None), "vocab", None)
        baseline = DriftBaseline.from_dataset(dataset, vocab=vocab,
                                              scores=[float(s) for s in base_scores])
        entry: Dict = {"matcher": name, "points": []}
        for index, rate in enumerate(rates):
            rng = np.random.default_rng(seed + 1000 * index)
            corrupted = corrupt_pairs(dataset.split.test, float(rate), rng)
            monitor = DriftMonitor(baseline,
                                   DriftThresholds(window=window, sustain=2))
            firewall = DataFirewall(schema=RecordSchema.for_dataset(dataset),
                                    monitor=monitor)
            accepted, quarantined = firewall.admit_pairs(
                corrupted, source=f"{dataset_name}@{rate:.2f}")
            if not firewall.stats.conserved:  # pragma: no cover - invariant
                raise AssertionError("firewall conservation violated")
            if accepted:
                scores = matcher.scores(accepted)
                monitor.observe_scores([float(s) for s in scores])
                predictions = matcher.predict(accepted)
                f1 = f1_score(predictions, labels_of(accepted))
            else:
                f1 = 0.0
            drift = monitor.stats()
            windows = int(drift["windows_evaluated"])
            flagged = int(drift["flagged_windows"])
            entry["points"].append({
                "corruption_rate": float(rate),
                "f1": float(f1),
                "offered_records": 2 * len(corrupted),
                "quarantined_records": int(quarantined),
                "quarantine_rate": quarantined / (2 * len(corrupted))
                if corrupted else 0.0,
                "accepted_pairs": len(accepted),
                "drift_windows": windows,
                "drift_flagged": flagged,
                "drift_flag_rate": flagged / windows if windows else 0.0,
            })
        series.append(entry)
    return dataset, series


def run_robustness_curve(dataset_name: str = "Beer",
                         matchers: Sequence[str] = DEFAULT_MATCHERS,
                         rates: Sequence[float] = DEFAULT_RATES,
                         seed: int = 7,
                         scale: Optional[Scale] = None) -> TableResult:
    """Render the robustness curve as a harness table (``repro bench``)."""
    scale = scale or get_scale()
    dataset, series = robustness_series(dataset_name, matchers, rates,
                                        seed=seed, scale=scale)
    by_matcher = {entry["matcher"]: entry["points"] for entry in series}
    rows: List[List[str]] = []
    for index, rate in enumerate(rates):
        shared = by_matcher[matchers[0]][index]
        row = [f"{float(rate):.0%}",
               f"{shared['quarantine_rate']:.1%}"]
        for name in matchers:
            point = by_matcher[name][index]
            row.append(fmt(point["f1"]))
            row.append(f"{point['drift_flagged']}/{point['drift_windows']}")
        rows.append(row)
    headers = ["corruption", "quarantined"]
    for name in matchers:
        headers += [f"{name} F1", f"{name} drift"]
    return TableResult(
        experiment="robust",
        title=f"Corruption robustness on {dataset.name} "
              f"(firewall + drift monitors active)",
        headers=headers,
        rows=rows,
        notes=[
            "perturbation mix: typo / null / attribute-swap / truncation / "
            "encoding garbage, each entity corrupted independently",
            "quarantined = records rejected by the firewall (conservation "
            "asserted); drift = flagged windows / evaluated windows",
            f"scale: max_pairs={scale.max_pairs}, epochs={scale.epochs}, "
            f"dim={scale.hidden_dim}",
        ],
    )
