"""End-to-end ER pipeline (the paper's Figure 5 and problem definition).

Section 2.1 defines ER as producing a matching matrix ``L ⊆ D × D'`` from two
entity collections.  :class:`ERPipeline` wires the full system together:

    blocker (keyword overlap)  →  matcher (HierGAT by default)  →  L

``fit`` trains the matcher on labeled pairs; ``resolve`` takes two raw tables
and returns the sparse matching matrix plus per-pair scores.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocking.base import Blocker, candidate_pairs
from repro.blocking.keyword import overlap_blocker
from repro.data.schema import Entity, EntityPair, PairDataset
from repro.matchers.base import Matcher
from repro.reliability.faults import fault_point
from repro.reliability.retry import retry_with_backoff


@dataclasses.dataclass
class ResolutionResult:
    """The matching matrix L and its provenance."""

    matches: List[Tuple[int, int]]          # (i, j) indices into the tables
    scores: Dict[Tuple[int, int], float]    # match probability per candidate
    num_candidates: int                     # pairs surviving blocking
    num_comparisons_avoided: int            # |A|*|B| - candidates

    def matrix(self, shape: Tuple[int, int]) -> np.ndarray:
        """Dense boolean matching matrix (small tables only)."""
        out = np.zeros(shape, dtype=bool)
        for i, j in self.matches:
            out[i, j] = True
        return out


class ERPipeline:
    """Blocking + matching, packaged the way a downstream user consumes ER."""

    def __init__(self, matcher: Optional[Matcher] = None,
                 min_shared_tokens: int = 2,
                 blocker: Optional[Blocker] = None,
                 candidates_per_record: int = 16):
        """``blocker`` swaps the candidate generator (see docs/BLOCKING.md).

        ``None`` keeps the legacy keyword-overlap path bit-for-bit; any
        :class:`~repro.blocking.base.Blocker` (TF-IDF, MinHash/LSH, random
        projection) is fitted over ``table_b`` at resolve time and queried
        with up to ``candidates_per_record`` candidates per ``table_a`` row.
        """
        if matcher is None:
            from repro.core import HierGAT

            matcher = HierGAT()
        self.matcher = matcher
        self.min_shared_tokens = min_shared_tokens
        self.blocker = blocker
        self.candidates_per_record = candidates_per_record
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, dataset: PairDataset, checkpoint_dir=None,
            resume: bool = False) -> "ERPipeline":
        """Train the matcher on a labeled benchmark.

        ``checkpoint_dir``/``resume`` are forwarded to matchers that support
        crash-safe training (see :func:`repro.core.trainer.train_pair_classifier`);
        other matchers train as before.
        """
        import inspect

        kwargs = {}
        if checkpoint_dir is not None:
            accepted = inspect.signature(self.matcher.fit).parameters
            if "checkpoint_dir" in accepted:
                kwargs = {"checkpoint_dir": checkpoint_dir, "resume": resume}
        self.matcher.fit(dataset, **kwargs)
        self._fitted = True
        return self

    def resolve(self, table_a: Sequence[Entity], table_b: Sequence[Entity],
                batch_hint: int = 64) -> ResolutionResult:
        """Produce the matching matrix for two raw tables.

        Blocking prunes the cross product with keyword overlap (Section 2.1:
        "the blocking step uses word matching to filter out the unmatching
        pairs"); the trained matcher scores the survivors.
        """
        if not self._fitted:
            raise RuntimeError("fit() the pipeline before resolve()")
        if not table_a or not table_b:
            return ResolutionResult([], {}, 0, len(table_a) * len(table_b))

        if self.blocker is not None:
            candidates = candidate_pairs(self.blocker, table_a, table_b,
                                         k=self.candidates_per_record)
        else:
            candidates = overlap_blocker(
                table_a, table_b, min_shared_tokens=self.min_shared_tokens)
        pairs = [EntityPair(table_a[i], table_b[j], 0) for i, j in candidates]
        scores: Dict[Tuple[int, int], float] = {}
        matches: List[Tuple[int, int]] = []
        for start in range(0, len(pairs), batch_hint):
            chunk = pairs[start:start + batch_hint]
            # Transient faults (injected or real IO hiccups under the LM
            # caches) retry with capped backoff instead of failing the batch.
            def score_chunk(chunk=chunk, start=start):
                fault_point("pipeline.score", chunk=start)
                return self.matcher.scores(chunk)

            chunk_scores = retry_with_backoff(score_chunk)
            for (i, j), score in zip(candidates[start:start + batch_hint], chunk_scores):
                scores[(i, j)] = float(score)
                if score >= self.matcher.threshold:
                    matches.append((i, j))
        avoided = len(table_a) * len(table_b) - len(candidates)
        return ResolutionResult(
            matches=matches,
            scores=scores,
            num_candidates=len(candidates),
            num_comparisons_avoided=avoided,
        )

    def resolve_one_to_one(self, table_a: Sequence[Entity],
                           table_b: Sequence[Entity]) -> ResolutionResult:
        """Greedy one-to-one assignment: each record matches at most once.

        Useful when the sources are known deduplicated catalogs; keeps the
        highest-scoring match per record, greedily by score.
        """
        raw = self.resolve(table_a, table_b)
        taken_a: set = set()
        taken_b: set = set()
        kept: List[Tuple[int, int]] = []
        for (i, j) in sorted(raw.matches, key=lambda ij: -raw.scores[ij]):
            if i in taken_a or j in taken_b:
                continue
            taken_a.add(i)
            taken_b.add(j)
            kept.append((i, j))
        return dataclasses.replace(raw, matches=kept)
