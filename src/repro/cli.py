"""Command-line interface: ``python -m repro <command>``.

Commands:
    datasets                      list the available benchmarks
    train --dataset NAME          train a matcher, report test F1, optionally save
    resume --dataset NAME         continue a killed training run from its checkpoint
    bench EXPERIMENT [...]        regenerate one or more paper tables/figures
    inspect --dataset NAME        print sample pairs and dataset statistics
    profile --dataset NAME        train under the op-level profiler, print hot ops
    embed --dataset NAME          build/refresh embedding-store shards for serving
    serve --dataset NAME          drive traffic through the online serving layer
    resolve --wal DIR             stream records through the crash-safe incremental cluster store
    quarantine --store PATH       inspect or replay a JSONL quarantine store
    lint [PATHS...]               check the determinism/gradient/concurrency invariants (R001-R010)
    lockgraph [--soak]            emit the static ∪ dynamic lock acquisition graph
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import Scale, set_scale

MATCHER_CHOICES = ("hiergat", "hiergat+", "ditto", "deepmatcher", "magellan",
                   "dmplus", "gcn", "gat", "hgat")


def _make_matcher(name: str):
    from repro.core import HierGAT, HierGATPlus
    from repro.matchers import (
        DeepMatcherModel, DittoModel, DMPlusMatcher, GATMatcher, GCNMatcher,
        HGATMatcher, MagellanMatcher,
    )

    factories = {
        "hiergat": HierGAT, "hiergat+": HierGATPlus, "ditto": DittoModel,
        "deepmatcher": DeepMatcherModel, "magellan": MagellanMatcher,
        "dmplus": DMPlusMatcher, "gcn": GCNMatcher, "gat": GATMatcher,
        "hgat": HGATMatcher,
    }
    return factories[name]()


def _apply_scale(args) -> None:
    scale = Scale.ci() if getattr(args, "fast", False) else Scale.bench()
    set_scale(scale)


def cmd_datasets(_args) -> int:
    from repro.data.magellan import DIRTY_DATASETS, MAGELLAN_DATASETS
    from repro.data.wdc import WDC_DOMAINS, WDC_SIZES

    print("Magellan benchmarks (Table 1):")
    for name, info in MAGELLAN_DATASETS.items():
        dirty = " [+dirty]" if name in DIRTY_DATASETS else ""
        print(f"  {name:16s} {info.domain:12s} paper size {info.size:7d} "
              f"pos {info.positives:6d}{dirty}")
    print(f"WDC domains: {', '.join(WDC_DOMAINS)} + all; sizes: {', '.join(WDC_SIZES)}")
    print("DI2KG (collective): camera, monitor")
    return 0


def cmd_train(args, resume: bool = False) -> int:
    _apply_scale(args)
    from repro.data import load_dataset
    from repro.reliability import COUNTERS, TrainingKilled

    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if resume and not checkpoint_dir:
        print("resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    dataset = load_dataset(args.dataset, dirty=args.dirty)
    print(dataset.summary())
    matcher = _make_matcher(args.matcher)
    if args.matcher == "hiergat+":
        print("hiergat+ is collective; use --dataset with a raw-table benchmark",
              file=sys.stderr)
        from repro.harness.collective import load_collective_dataset
        from repro.config import get_scale

        collective = load_collective_dataset(args.dataset, get_scale())
        matcher.fit(collective)
        print(f"test F1 = {matcher.test_f1_collective(collective):.1f}")
        return 0

    fit_kwargs = {}
    if checkpoint_dir:
        import inspect

        if "checkpoint_dir" not in inspect.signature(matcher.fit).parameters:
            print(f"matcher {args.matcher!r} does not support checkpointed "
                  f"training", file=sys.stderr)
            return 2
        fit_kwargs = {"checkpoint_dir": checkpoint_dir, "resume": resume}
    try:
        matcher.fit(dataset, **fit_kwargs)
    except TrainingKilled as exc:
        print(f"training killed: {exc}", file=sys.stderr)
        print(f"restart with: repro resume --dataset {args.dataset} "
              f"--checkpoint-dir {checkpoint_dir}", file=sys.stderr)
        return 3
    result = getattr(matcher, "train_result", None)
    if resume and result is not None and result.resumed_from is not None:
        print(f"resumed from epoch {result.resumed_from} "
              f"(checkpoint: {checkpoint_dir})")
    elif resume:
        print("no usable checkpoint found; trained from scratch")
    print(f"test F1 = {matcher.test_f1(dataset):.1f}")
    recovered = {k: v for k, v in COUNTERS.as_dict().items() if v}
    if recovered:
        print("recovery counters: "
              + ", ".join(f"{k}={v}" for k, v in sorted(recovered.items())))
    if args.save:
        from repro.persistence import save_matcher

        print(f"saved to {save_matcher(matcher, args.save)}")
    return 0


def cmd_resume(args) -> int:
    """Continue a killed ``train --checkpoint-dir`` run bitwise-identically."""
    return cmd_train(args, resume=True)


def cmd_bench(args) -> int:
    _apply_scale(args)
    from repro.harness import EXPERIMENTS

    unknown = [e for e in args.experiments if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments {unknown}; available: {sorted(EXPERIMENTS)}",
              file=sys.stderr)
        return 2
    for experiment in args.experiments:
        print(EXPERIMENTS[experiment]().render())
        print()
    return 0


def cmd_inspect(args) -> int:
    _apply_scale(args)
    from repro.data import load_dataset

    dataset = load_dataset(args.dataset, dirty=args.dirty)
    print(dataset.summary())
    shown = 0
    for pair in dataset.pairs:
        if shown >= args.num:
            break
        tag = "MATCH    " if pair.label else "NON-MATCH"
        print(f"\n[{tag}]")
        print("  A:", dict(pair.left.attributes))
        print("  B:", dict(pair.right.attributes))
        shown += 1
    return 0


def cmd_profile(args) -> int:
    _apply_scale(args)
    from repro import perf
    from repro.perf.profiler import wall_clock
    from repro.data import load_dataset

    if args.perf == "off":
        perf.disable()
    elif args.perf == "full":
        perf.enable()
    # "default" leaves the session config (cache on, fused off) untouched.

    use_store = args.store != "off"
    if use_store and args.matcher != "hiergat":
        print("--store requires the hiergat matcher (the encoder/GAT split)",
              file=sys.stderr)
        return 2

    dataset = load_dataset(args.dataset, dirty=args.dirty)
    matcher = _make_matcher(args.matcher)
    perf.reset_stats()
    store_scorer = None
    start = wall_clock()
    with perf.profile() as prof:
        matcher.fit(dataset)
        f1 = matcher.test_f1(dataset)
        if use_store:
            from repro.store import StoreBackedScorer, build_store

            store_dir = args.store_dir or f".repro-store/{args.dataset}-{args.store}"
            entities = [entity for pair in dataset.split.test
                        for entity in (pair.left, pair.right)]
            store = build_store(store_dir, matcher, entities, dtype=args.store)
            store_scorer = StoreBackedScorer(matcher, store=store)
            store_scorer.scores(dataset.split.test)
    wall = wall_clock() - start

    print(prof.report(args.top))
    print()
    print(f"wall time      {wall:.2f}s  (fit + test predict, {args.dataset})")
    print(f"test F1        {f1:.1f}")
    for name, stats in perf.cache_stats().items():
        print(f"cache[{name}]   hits={stats['hits']} misses={stats['misses']} "
              f"evictions={stats['evictions']} hit_rate={stats['hit_rate']:.0%}")
    if store_scorer is not None:
        stats = store_scorer.stats()
        store_counts = stats["store"]
        print(f"store[{stats['dtype']}] hits={store_counts['hits']} "
              f"misses={store_counts['misses']} "
              f"stale={store_counts['stale_misses']} "
              f"corrupt_shards={store_counts['corrupt_shards']} "
              f"live_fallbacks={stats['live_fallbacks']}")
    return 0


def cmd_embed(args) -> int:
    """Build or refresh embedding-store shards for a dataset.

    Trains the (deterministic, seeded) HierGAT matcher, materializes the
    frozen-encoder embeddings of every record in the dataset into the store
    directory, and optionally verifies store-vs-live parity on the test
    split.  Re-running after an interrupted build discards partial writes
    and completes the store; the training seed makes the rebuilt weights —
    and therefore the store's weights digest — identical.
    """
    _apply_scale(args)
    from repro.data import load_dataset
    from repro.store import build_store, parity_report

    if args.matcher != "hiergat":
        print("embed requires the hiergat matcher (the encoder/GAT split)",
              file=sys.stderr)
        return 2
    dataset = load_dataset(args.dataset, dirty=args.dirty)
    matcher = _make_matcher(args.matcher)
    print(f"fitting {args.matcher} on {args.dataset} ...", file=sys.stderr)
    matcher.fit(dataset)
    entities = []
    for split in (dataset.split.train, dataset.split.valid, dataset.split.test):
        for pair in split:
            entities.append(pair.left)
            entities.append(pair.right)
    store = build_store(args.store, matcher, entities, dtype=args.dtype,
                        shard_size=args.shard_size)
    print(f"built store at {args.store}: {len(store)} records, "
          f"dtype={store.dtype}, "
          f"shards={len(store.manifest['checksums']) // 2}")
    if args.verify:
        report = parity_report(matcher, store, dataset.split.test)
        print(f"verify: pairs={report['pairs']} bitwise={report['bitwise']} "
              f"max_abs_diff={report['max_abs_diff']:.3e} "
              f"store_hits={report['store_hits']} "
              f"live_fallbacks={report['live_fallbacks']}")
        if store.dtype == "float32" and not report["bitwise"]:
            print("VERIFY FAILED: float32 store mode must match the live "
                  "encoder path bitwise", file=sys.stderr)
            return 1
        if report["live_fallbacks"]:
            print("VERIFY FAILED: a freshly built store must cover every "
                  "test record (live fallbacks observed)", file=sys.stderr)
            return 1
    return 0


def cmd_serve(args) -> int:
    """Stand up the online serving layer and drive concurrent traffic.

    Without ``--soak`` this is a clean-traffic run (the latency baseline);
    with ``--soak`` the standard chaos plan injects transient faults, cache
    poisonings, and stalls while the harness asserts conservation and
    tier-1 bitwise parity.  ``--replicas N`` swaps the single-process
    service for the multi-process cluster router (N replica processes,
    cross-request batch coalescing, sharded blocking); ``--soak`` then
    also injects replica-side faults, and ``--kill-replica`` SIGKILLs a
    replica mid-soak to exercise failover + respawn.  Exit status 1 if
    any invariant fails.
    """
    _apply_scale(args)
    import json as _json

    from repro.data import load_dataset
    from repro.serving import (
        ServingConfig, build_cascade, default_chaos_plan, run_soak,
    )

    dataset = load_dataset(args.dataset, dirty=args.dirty)
    matcher = _make_matcher(args.matcher)
    print(f"fitting tier-1 matcher ({args.matcher}) on {args.dataset} ...",
          file=sys.stderr)
    matcher.fit(dataset)
    print("fitting fallback tiers (magellan features, tfidf floor) ...",
          file=sys.stderr)
    cascade = build_cascade(matcher, dataset)

    store = None
    if args.store is not None:
        if args.matcher != "hiergat":
            print("--store requires the hiergat matcher "
                  "(the encoder/GAT split)", file=sys.stderr)
            return 2
        from repro.store import EmbeddingStore, build_store

        try:
            store = EmbeddingStore.open(args.store)
            store.bind(matcher._network)
        except FileNotFoundError:
            store = None
        if store is None or not store.valid():
            print(f"building embedding store at {args.store} "
                  f"(dtype={args.store_dtype}) ...", file=sys.stderr)
            entities = [entity for pair in dataset.split.test
                        for entity in (pair.left, pair.right)]
            store = build_store(args.store, matcher, entities,
                                dtype=args.store_dtype)

    if args.replicas:
        from repro.serving import (
            ClusterConfig, ReplicaKill, default_cluster_chaos_plan,
            default_replica_fault_specs, run_cluster_soak,
        )

        cluster_config = ClusterConfig(
            replicas=args.replicas,
            queue_capacity=args.capacity,
            default_deadline=args.deadline,
            replica_faults=(default_replica_fault_specs()
                            if args.soak else ()))
        report = run_cluster_soak(
            cascade, dataset.split.test, config=cluster_config,
            plan=default_cluster_chaos_plan() if args.soak else None,
            n_clients=args.clients, requests_per_client=args.requests,
            pairs_per_request=args.pairs, deadline_s=args.deadline,
            seed=args.seed, store_path=args.store,
            kill=ReplicaKill() if args.kill_replica else None,
            lockcheck=True if args.lockcheck else None)
    else:
        config = ServingConfig(queue_capacity=args.capacity,
                               num_workers=args.workers,
                               default_deadline=args.deadline)
        plan = default_chaos_plan() if args.soak else None
        report = run_soak(
            cascade, dataset.split.test, config=config, plan=plan,
            n_clients=args.clients, requests_per_client=args.requests,
            pairs_per_request=args.pairs, deadline_s=args.deadline,
            seed=args.seed, store=store,
            lockcheck=True if args.lockcheck else None)

    if args.json:
        print(_json.dumps(report.as_dict(), indent=2, default=str))
    else:
        print(report.summary())
        breaker = report.service_stats.get("breaker")
        if breaker is not None:
            print(f"breaker: state={breaker['state']} "
                  f"opened={breaker['opened']} "
                  f"short_circuits={breaker['short_circuits']}")
        store_stats = report.service_stats.get("store")
        if store_stats:
            counts = store_stats["store"]
            print(f"store[{store_stats['dtype']}]: hits={counts['hits']} "
                  f"misses={counts['misses']} "
                  f"live_fallbacks={store_stats['live_fallbacks']}")
    if not report.ok:
        print("SOAK FAILED: "
              + ("requests lost; " if not report.conserved else "")
              + ("tier-1 parity broken; " if not report.tier1_parity else "")
              + ("lock-order/guarded-write violations"
                 if not report.locks_clean else ""),
              file=sys.stderr)
        return 1
    return 0


def cmd_resolve(args) -> int:
    """Stream multi-source records through the incremental cluster store.

    Generates a deterministic multi-source record stream (same generator
    as the collective-ER pipeline), offers it to a WAL-backed
    :class:`~repro.resolve.stream.StreamingResolver` with a seeded
    out-of-order schedule and scheduled retractions, and prints the
    conservation stats plus the cluster-state digest.

    The stream parameters are persisted to ``<wal>/stream.json``
    (atomically, tmp + ``os.replace``) so ``--resume`` after a crash —
    including a ``kill -9``, which ``--kill-after`` self-inflicts —
    regenerates the identical stream, replays the WAL, re-offers the
    records (already-ingested uids are rejected as duplicates), and ends
    in a bitwise-identical cluster state: equal digests.
    """
    import hashlib as _hashlib
    import json as _json
    import os as _os
    import signal as _signal

    import numpy as _np

    from repro.data.generators import generate_source_tables
    from repro.data.magellan import MAGELLAN_DATASETS
    from repro.resolve import (
        JaccardScorer, ResolveConfig, StreamingResolver, WriteAheadLog,
    )

    if args.fast:
        set_scale(Scale.ci())
    params_path = _os.path.join(args.wal, "stream.json")
    if args.resume:
        if not _os.path.exists(params_path):
            print(f"no stream parameters at {params_path}; was this WAL "
                  f"written by `repro resolve`?", file=sys.stderr)
            return 1
        with open(params_path, encoding="utf-8") as fh:
            params = _json.load(fh)
    else:
        params = {
            "dataset": args.dataset,
            "records": args.records,
            "sources": args.sources,
            "overlap": args.overlap,
            "seed": args.seed,
            "retract_rate": args.retract_rate,
            "match_threshold": args.match_threshold,
            "nonmatch_threshold": args.nonmatch_threshold,
            "reorder_window": args.reorder_window,
        }
        _os.makedirs(args.wal, exist_ok=True)
        tmp = f"{params_path}.tmp.{_os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            _json.dump(params, fh, sort_keys=True, indent=2)
        _os.replace(tmp, params_path)

    # The stream is a pure function of the persisted parameters: same
    # records, same sequence numbers, same out-of-order offer schedule.
    spec = MAGELLAN_DATASETS[params["dataset"]].spec
    sources = tuple(f"s{i}" for i in range(params["sources"]))
    tables, _truth = generate_source_tables(
        spec, params["records"], seed=params["seed"], sources=sources,
        overlap=params["overlap"])
    records = [r for source in sorted(tables) for r in tables[source]]
    rng = _np.random.default_rng(params["seed"])
    block = max(2, min(8, params["reorder_window"] // 2))
    schedule: List[int] = []
    for start in range(0, len(records), block):
        indices = _np.arange(start, min(start + block, len(records)))
        rng.shuffle(indices)
        schedule.extend(int(i) for i in indices)
    retract_uids = [
        record.uid for record in records
        if int(_hashlib.blake2b(f"{params['seed']}:{record.uid}".encode(),
                                digest_size=4).hexdigest(), 16) / 0xFFFFFFFF
        < params["retract_rate"]]

    config = ResolveConfig(
        match_threshold=params["match_threshold"],
        nonmatch_threshold=params["nonmatch_threshold"],
        reorder_capacity=params["reorder_window"],
        seed=params["seed"])
    scorer = JaccardScorer()
    recovered = 0
    if args.resume:
        resolver = StreamingResolver.resume(
            scorer, WriteAheadLog(args.wal), config=config)
        recovered = int(resolver.stats()["ingested"])
    else:
        resolver = StreamingResolver(
            scorer, config=config, wal=WriteAheadLog(args.wal))

    offered = 0
    for index in schedule:
        resolver.offer(records[index], seq=index)
        offered += 1
        if args.kill_after is not None and offered >= args.kill_after:
            _os.kill(_os.getpid(), _signal.SIGKILL)
    for uid in retract_uids:
        resolver.retract(uid, reason="scheduled-retraction")
    resolver.close()

    stats = resolver.stats()
    report = {
        "stats": stats,
        "store": resolver.store.stats(),
        "digest": resolver.store.digest(),
        "recovered": recovered,
        "retractions_scheduled": len(retract_uids),
        "wal_segments": len(resolver.wal.segments),
    }
    if args.json:
        print(_json.dumps(report, sort_keys=True, indent=2))
    else:
        mode = f"resumed ({recovered} recovered from WAL)" \
            if args.resume else "fresh"
        print(f"resolve: {mode}")
        print(f"  ingested  {stats['ingested']}")
        print(f"  clustered {stats['clustered']}")
        print(f"  retracted {stats['retracted']}  "
              f"({len(retract_uids)} scheduled)")
        print(f"  conserved {stats['conserved']}")
        store_stats = report["store"]
        print(f"  clusters  {store_stats['clusters']} over "
              f"{store_stats['records']} records "
              f"({store_stats['match_edges']} match / "
              f"{store_stats['nonmatch_edges']} non-match edges)")
        print(f"  digest    {report['digest']}")
    return 0 if stats["conserved"] else 1


def cmd_quarantine(args) -> int:
    """Inspect a quarantine store; with ``--replay``, re-offer every record.

    Replay builds a fresh :class:`~repro.guard.firewall.DataFirewall` with
    the (possibly relaxed) schema from the flags and offers each held
    record again: records that now validate are removed from the store
    (and written to ``--out`` if given), the rest stay quarantined and the
    JSONL file is rewritten atomically.
    """
    import json as _json

    from repro.guard import DataFirewall, QuarantineStore, RecordSchema

    store = QuarantineStore.load(args.store)
    if not len(store):
        print(f"{args.store}: quarantine empty")
        return 0
    print(f"{args.store}: {len(store)} quarantined record(s)")
    for reason, count in sorted(store.by_reason().items()):
        print(f"  {reason:20s} {count}")
    for record in store.records[:args.num]:
        print(f"  [{record.reason}] {record.source}:row {record.row} "
              f"uid={record.uid!r}  {record.detail}")
    if len(store) > args.num:
        print(f"  ... ({len(store) - args.num} more; raise --num to see them)")
    if not args.replay:
        return 0

    schema = RecordSchema(max_value_chars=args.max_value_chars,
                          max_null_fraction=args.max_null_fraction)
    firewall = DataFirewall(schema=schema, store=store)
    accepted, remaining = firewall.replay()
    print(f"replay: {len(accepted)} accepted, {remaining} still quarantined "
          f"({args.store} rewritten)")
    if args.out and accepted:
        with open(args.out, "w", encoding="utf-8") as fh:
            for entity in accepted:
                fh.write(_json.dumps({"uid": entity.uid,
                                      "values": dict(entity.attributes)},
                                     sort_keys=True) + "\n")
        print(f"wrote {len(accepted)} replayed record(s) to {args.out}")
    return 0


def cmd_lockgraph(args) -> int:
    """Emit the merged static ∪ dynamic lock acquisition graph.

    The static half is the R008 collection (every nested ``with`` plus
    one level of interprocedural resolution) annotated with
    ``LOCK_HIERARCHY`` ranks; ``--soak`` additionally runs a small
    lock-checked chaos soak and merges the dynamically observed edges
    and per-lock hold-time percentiles.  Exit 1 if the merged graph has
    a cycle or the dynamic run reported violations.
    """
    import json as _json

    from repro.analysis.concurrency import build_static_graph, find_cycles

    graph = build_static_graph(args.root, tuple(args.paths))
    edges: dict = {(e["src"], e["dst"]): dict(e, origin="static")
                   for e in graph["edges"]}
    dynamic = None
    if args.soak:
        _apply_scale(args)
        from repro.data import load_dataset
        from repro.serving import build_cascade, default_chaos_plan, run_soak

        dataset = load_dataset(args.dataset, dirty=args.dirty)
        matcher = _make_matcher("hiergat")
        print(f"fitting tier-1 matcher on {args.dataset} for the dynamic "
              f"half ...", file=sys.stderr)
        matcher.fit(dataset)
        report = run_soak(
            build_cascade(matcher, dataset), dataset.split.test,
            plan=default_chaos_plan(), n_clients=2, requests_per_client=4,
            pairs_per_request=4, seed=0, lockcheck=True)
        dynamic = report.lockcheck
        for edge in dynamic["edges"]:
            key = (edge["src"], edge["dst"])
            if key in edges:
                edges[key]["origin"] = "both"
                edges[key]["dynamic_count"] = edge["count"]
            else:
                edges[key] = {"src": edge["src"], "dst": edge["dst"],
                              "count": edge["count"], "origin": "dynamic"}
    cycles = find_cycles(edges)
    violations = []
    if dynamic is not None:
        violations = (list(dynamic["order_violations"])
                      + list(dynamic["unguarded_writes"]))
    merged = {
        "hierarchy": graph["hierarchy"],
        "nodes": sorted(set(graph["nodes"])
                        | {name for key in edges for name in key}),
        "edges": [edges[key] for key in sorted(edges)],
        "cycles": cycles,
        "acyclic": not cycles,
        "violations": violations,
        "hold_ms": dynamic["hold_ms"] if dynamic else {},
        "acquisitions": dynamic["acquisitions"] if dynamic else {},
    }
    if args.dot:
        print(_dot_graph(merged))
    else:
        print(_json.dumps(merged, indent=2))
    if cycles or violations:
        print("LOCKGRAPH FAILED: "
              + (f"{len(cycles)} cycle(s); " if cycles else "")
              + (f"{len(violations)} dynamic violation(s)"
                 if violations else ""),
              file=sys.stderr)
        return 1
    return 0


def _dot_graph(merged) -> str:
    """Graphviz DOT for the merged acquisition graph."""
    lines = ["digraph lockorder {", "  rankdir=LR;",
             '  node [shape=box, fontname="monospace"];']
    hierarchy = merged["hierarchy"]
    for name in merged["nodes"]:
        rank = hierarchy.get(name)
        label = name if rank is None else f"{name}\\nrank {rank}"
        shape = ' style=dashed' if rank is None else ""
        lines.append(f'  "{name}" [label="{label}"{shape}];')
    styles = {"static": "solid", "dynamic": "dashed", "both": "bold"}
    for edge in merged["edges"]:
        hold = merged["hold_ms"].get(edge["dst"])
        label = edge["origin"]
        if hold is not None:
            label += f"\\np99 {hold['p99_ms']:.2f}ms"
        lines.append(
            f'  "{edge["src"]}" -> "{edge["dst"]}" '
            f'[label="{label}", style={styles[edge["origin"]]}];')
    lines.append("}")
    return "\n".join(lines)


def cmd_lint(args) -> int:
    """Run the static invariant rules; exit 0 iff the tree is clean."""
    from repro.analysis import Analyzer

    if args.sanitize:
        from repro.analysis import sanitizer

        sanitizer.enable()
        print("write-sanitizer enabled for this process "
              "(graph-visible arrays frozen)", file=sys.stderr)

    analyzer = Analyzer(root=args.root)
    report = analyzer.run(args.paths)
    print(report.to_json() if args.json else report.human())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available benchmarks")

    train = sub.add_parser("train", help="train a matcher on a benchmark")
    train.add_argument("--dataset", required=True)
    train.add_argument("--matcher", choices=MATCHER_CHOICES, default="hiergat")
    train.add_argument("--dirty", action="store_true")
    train.add_argument("--save", default=None, help="save fitted model to .npz")
    train.add_argument("--fast", action="store_true", help="tiny CI scale")
    train.add_argument("--checkpoint-dir", default=None,
                       help="write atomic epoch checkpoints here (crash-safe)")

    resume = sub.add_parser(
        "resume", help="continue a killed training run from its checkpoint")
    resume.add_argument("--dataset", required=True)
    resume.add_argument("--matcher", choices=MATCHER_CHOICES, default="hiergat")
    resume.add_argument("--dirty", action="store_true")
    resume.add_argument("--save", default=None, help="save fitted model to .npz")
    resume.add_argument("--fast", action="store_true", help="tiny CI scale")
    resume.add_argument("--checkpoint-dir", required=True,
                        help="checkpoint directory of the killed run")

    bench = sub.add_parser("bench", help="regenerate paper tables/figures")
    bench.add_argument("experiments", nargs="+")
    bench.add_argument("--fast", action="store_true")

    inspect = sub.add_parser("inspect", help="print sample pairs")
    inspect.add_argument("--dataset", required=True)
    inspect.add_argument("--dirty", action="store_true")
    inspect.add_argument("--num", type=int, default=3)
    inspect.add_argument("--fast", action="store_true")

    profile = sub.add_parser("profile", help="train under the op-level profiler")
    profile.add_argument("--dataset", required=True)
    profile.add_argument("--matcher", choices=MATCHER_CHOICES, default="hiergat")
    profile.add_argument("--dirty", action="store_true")
    profile.add_argument("--top", type=int, default=10, help="ops to show")
    profile.add_argument("--perf", choices=("default", "off", "full"),
                         default="default",
                         help="performance-layer switches during the run")
    profile.add_argument("--fast", action="store_true", help="tiny CI scale")
    profile.add_argument("--store", choices=("off", "float32", "float16", "int8"),
                         default="off",
                         help="also build an embedding store and profile "
                              "store-backed scoring (prints store hits)")
    profile.add_argument("--store-dir", default=None,
                         help="store directory for --store (default: "
                              ".repro-store/<dataset>-<dtype>)")

    embed = sub.add_parser(
        "embed", help="build/refresh embedding-store shards for serving")
    embed.add_argument("--dataset", required=True)
    embed.add_argument("--matcher", choices=MATCHER_CHOICES, default="hiergat")
    embed.add_argument("--dirty", action="store_true")
    embed.add_argument("--store", required=True,
                       help="store directory to build/refresh")
    embed.add_argument("--dtype", choices=("float32", "float16", "int8"),
                       default="float32",
                       help="stored embedding format (quantized modes "
                            "persist per-slot scale factors)")
    embed.add_argument("--shard-size", type=int, default=256,
                       help="records per shard file")
    embed.add_argument("--verify", action="store_true",
                       help="score the test split store-backed vs live and "
                            "assert parity/coverage")
    embed.add_argument("--fast", action="store_true", help="tiny CI scale")

    serve = sub.add_parser(
        "serve", help="drive concurrent traffic through the serving layer")
    serve.add_argument("--dataset", required=True)
    serve.add_argument("--matcher", choices=MATCHER_CHOICES, default="hiergat")
    serve.add_argument("--dirty", action="store_true")
    serve.add_argument("--fast", action="store_true", help="tiny CI scale")
    serve.add_argument("--soak", action="store_true",
                       help="inject the standard chaos plan and assert "
                            "conservation + tier-1 parity")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--replicas", type=int, default=0,
                       help="run the multi-process cluster router with N "
                            "replica processes (0 = single-process service)")
    serve.add_argument("--kill-replica", action="store_true",
                       help="SIGKILL one replica mid-soak (cluster mode) to "
                            "exercise failover, redispatch, and respawn")
    serve.add_argument("--capacity", type=int, default=32,
                       help="bounded request-queue size (admission control)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request deadline in seconds")
    serve.add_argument("--clients", type=int, default=4,
                       help="concurrent client threads")
    serve.add_argument("--requests", type=int, default=8,
                       help="requests per client")
    serve.add_argument("--pairs", type=int, default=8,
                       help="entity pairs per request")
    serve.add_argument("--seed", type=int, default=0,
                       help="workload-composition seed")
    serve.add_argument("--lockcheck", action="store_true",
                       help="run the lock-order sanitizer for the soak "
                            "(also honoured via REPRO_LOCKCHECK=1)")
    serve.add_argument("--json", action="store_true",
                       help="print the full report as JSON")
    serve.add_argument("--store", default=None,
                       help="serve tier 1 from an embedding store: open the "
                            "manifest at this directory (building it first "
                            "if absent); requires --matcher hiergat")
    serve.add_argument("--store-dtype", choices=("float32", "float16", "int8"),
                       default="float32",
                       help="stored embedding format when --store builds")

    resolve = sub.add_parser(
        "resolve",
        help="stream records through the crash-safe incremental cluster "
             "store")
    resolve.add_argument("--wal", required=True,
                         help="write-ahead-log directory (created if absent; "
                              "also holds the stream.json parameters)")
    resolve.add_argument("--resume", action="store_true",
                         help="replay the WAL and continue the persisted "
                              "stream instead of starting fresh")
    resolve.add_argument("--records", type=int, default=200,
                         help="entities in the generated universe")
    resolve.add_argument("--sources", type=int, default=3,
                         help="number of source tables in the stream")
    resolve.add_argument("--overlap", type=float, default=0.7,
                         help="fraction of entities present per extra source")
    resolve.add_argument("--seed", type=int, default=0)
    resolve.add_argument("--retract-rate", type=float, default=0.05,
                         help="fraction of records retracted after the "
                              "stream (seeded, deterministic)")
    resolve.add_argument("--match-threshold", type=float, default=0.35)
    resolve.add_argument("--nonmatch-threshold", type=float, default=0.05)
    resolve.add_argument("--reorder-window", type=int, default=32,
                         help="reorder-buffer capacity (out-of-order bound)")
    resolve.add_argument("--kill-after", type=int, default=None,
                         help="SIGKILL this process after N offers "
                              "(crash-recovery drills; resume with --resume)")
    resolve.add_argument("--dataset", default="Amazon-Google",
                         help="domain spec for the generated records")
    resolve.add_argument("--json", action="store_true",
                         help="machine-readable report")
    resolve.add_argument("--fast", action="store_true",
                         help="tiny CI scale")

    quarantine = sub.add_parser(
        "quarantine", help="inspect or replay a JSONL quarantine store")
    quarantine.add_argument("--store", required=True,
                            help="JSONL file written by a firewall's "
                                 "QuarantineStore")
    quarantine.add_argument("--replay", action="store_true",
                            help="re-validate every held record; records "
                                 "that now pass leave the store")
    quarantine.add_argument("--num", type=int, default=5,
                            help="sample records to print")
    quarantine.add_argument("--max-value-chars", type=int, default=4096,
                            help="schema bound used for replay validation")
    quarantine.add_argument("--max-null-fraction", type=float, default=1.0,
                            help="schema bound used for replay validation")
    quarantine.add_argument("--out", default=None,
                            help="write successfully replayed records here "
                                 "(JSONL)")

    lint = sub.add_parser(
        "lint", help="statically check the determinism/gradient invariants")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files/directories to lint (default: src/repro)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report instead of path:line rows")
    lint.add_argument("--sanitize", action="store_true",
                      help="also enable the runtime write-sanitizer hooks")
    lint.add_argument("--root", default=".",
                      help="repo root for cross-file rules (default: cwd)")

    lockgraph = sub.add_parser(
        "lockgraph",
        help="emit the static ∪ dynamic lock acquisition graph")
    lockgraph.add_argument("--root", default=".",
                           help="repo root (default: cwd)")
    lockgraph.add_argument("--paths", nargs="*", default=["src/repro"],
                           help="paths for the static half")
    lockgraph.add_argument("--dot", action="store_true",
                           help="emit Graphviz DOT instead of JSON")
    lockgraph.add_argument("--soak", action="store_true",
                           help="run a small lock-checked chaos soak and "
                                "merge its dynamic edges + hold times")
    lockgraph.add_argument("--dataset", default="Beer",
                           help="dataset for the --soak run")
    lockgraph.add_argument("--dirty", action="store_true")
    lockgraph.add_argument("--fast", action="store_true",
                           help="tiny CI scale for the --soak run")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "train": cmd_train,
        "resume": cmd_resume,
        "bench": cmd_bench,
        "inspect": cmd_inspect,
        "profile": cmd_profile,
        "embed": cmd_embed,
        "serve": cmd_serve,
        "resolve": cmd_resolve,
        "quarantine": cmd_quarantine,
        "lint": cmd_lint,
        "lockgraph": cmd_lockgraph,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
