"""Reverse-mode automatic differentiation over numpy arrays.

This package is the computational substrate for the whole reproduction: the
paper's models were implemented in PyTorch, which is unavailable here, so we
provide a small but complete autograd engine with the same programming model
(tensors that record the operations applied to them, a ``backward()`` call
that accumulates gradients, and gradient-based optimizers).

Public API::

    from repro.autograd import Tensor, tensor, zeros, ones, randn
    from repro.autograd import functional as F
    from repro.autograd.optim import Adam, SGD
"""

from repro.autograd.tensor import (
    Tensor,
    broadcast_to,
    concat,
    no_grad,
    ones,
    randn,
    set_default_dtype,
    get_default_dtype,
    stack,
    tensor,
    zeros,
)
from repro.autograd import functional
from repro.autograd.gradcheck import gradcheck
from repro.autograd.optim import SGD, Adam, Optimizer, clip_grad_norm

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "broadcast_to",
    "concat",
    "stack",
    "no_grad",
    "set_default_dtype",
    "get_default_dtype",
    "functional",
    "gradcheck",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
]
