"""Gradient-based optimizers (SGD with momentum, Adam) and gradient clipping."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.perf.cache import bump_params_version


class Optimizer:
    """Base class: holds parameters and clears their gradients."""

    def __init__(self, params: Iterable[Tensor]):
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def load_state_dict(self, state: dict) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            # Rebind out-of-place: bitwise-identical to `-=` (same ufunc,
            # fresh output buffer) but leaves graph-captured payloads intact,
            # so the write-sanitizer can freeze them (R002).
            p.data = p.data - self.lr * grad
        bump_params_version()

    def state_dict(self) -> dict:
        """Mutable state only; parameter identity comes from construction order."""
        return {
            "kind": "sgd",
            "lr": self.lr,
            "m": [np.zeros_like(p.data) if v is None else v.copy()
                  for v, p in zip(self._velocity, self.params)],
            "v": [],
        }

    def load_state_dict(self, state: dict) -> None:
        if state.get("kind") != "sgd" or len(state["m"]) != len(self.params):
            raise ValueError("optimizer state does not match this SGD instance")
        self.lr = float(state["lr"])
        self._velocity = [m.copy() for m in state["m"]]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimizer used in the paper (Section 6.1)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            # Out-of-place for the same reason as SGD.step: sanitizer-safe,
            # bitwise-identical update.
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        bump_params_version()

    def state_dict(self) -> dict:
        """Mutable state only (moments, step count, current learning rate).

        The learning rate is included because NaN-rollback recovery halves
        it mid-run; a resumed run must continue with the halved rate.
        """
        return {
            "kind": "adam",
            "lr": self.lr,
            "step": self._step,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        if (state.get("kind") != "adam" or len(state["m"]) != len(self.params)
                or len(state["v"]) != len(self.params)):
            raise ValueError("optimizer state does not match this Adam instance")
        self.lr = float(state["lr"])
        self._step = int(state["step"])
        self._m = [m.copy() for m in state["m"]]
        self._v = [v.copy() for v in state["v"]]


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Clip gradients in-place to a global L2 norm; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
