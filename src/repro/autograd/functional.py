"""Differentiable functional operations built on :class:`~repro.autograd.Tensor`.

These mirror the subset of ``torch.nn.functional`` the paper's models need:
activations, (log-)softmax, dropout, layer norm, embedding lookup, masking
helpers, and classification losses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor, unbroadcast


def relu(x: Tensor) -> Tensor:
    data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (x.data > 0))

    return Tensor._make(data, (x,), backward, "relu")


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    """LeakyReLU with the 0.2 slope used by GAT attention scoring."""
    data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * np.where(x.data > 0, 1.0, negative_slope).astype(x.data.dtype))

    return Tensor._make(data, (x,), backward, "leaky_relu")


def sigmoid(x: Tensor) -> Tensor:
    # Numerically stable piecewise form (avoids overflow in exp).
    data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.abs(x.data))),
        np.exp(-np.abs(x.data)) / (1.0 + np.exp(-np.abs(x.data))),
    )

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * data * (1.0 - data))

    return Tensor._make(data, (x,), backward, "sigmoid")


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in BERT)."""
    c = np.sqrt(2.0 / np.pi).astype(x.data.dtype)
    xd = x.data
    # x**3 spelled as x*x*x: numpy has no fast path for float ** 3 and falls
    # back to libm pow, which dominated the FFN in profiles.
    x2 = xd * xd
    inner = c * (xd + 0.044715 * (x2 * xd))
    t = np.tanh(inner)
    data = 0.5 * xd * (1.0 + t)

    def backward(grad: np.ndarray) -> None:
        dinner = c * (1.0 + (3 * 0.044715) * x2)
        dx = 0.5 * (1.0 + t) + 0.5 * xd * (1.0 - t * t) * dinner
        x._accumulate(grad * dx)

    return Tensor._make(data, (x,), backward, "gelu")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * data).sum(axis=axis, keepdims=True)
        x._accumulate(data * (grad - dot))

    return Tensor._make(data, (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_sum
    soft = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(data, (x,), backward, "log_softmax")


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: identity at evaluation time."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(data, (x,), backward, "dropout")


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` — the classic embedding lookup.

    ``indices`` is an integer array of any shape; the result has shape
    ``indices.shape + (embedding_dim,)``.
    """
    indices = np.asarray(indices)
    data = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.data.shape[-1]))
        weight._accumulate(full)

    return Tensor._make(data, (weight,), backward, "embedding")


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis."""
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mu) * inv
    data = gamma.data * x_hat + beta.data
    n = x.data.shape[-1]

    def backward(grad: np.ndarray) -> None:
        gamma._accumulate(
            unbroadcast(grad * x_hat, gamma.shape)
        )
        beta._accumulate(unbroadcast(grad, beta.shape))
        dx_hat = grad * gamma.data
        dx = (
            dx_hat
            - dx_hat.mean(axis=-1, keepdims=True)
            - x_hat * (dx_hat * x_hat).mean(axis=-1, keepdims=True)
        ) * inv
        x._accumulate(dx)

    _ = n  # documented for clarity; mean() already divides by n
    return Tensor._make(data, (x, gamma, beta), backward, "layer_norm")


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Set entries where ``mask`` is True to ``value`` (no gradient there)."""
    mask = np.asarray(mask, dtype=bool)
    data = np.where(mask, np.asarray(value, dtype=x.data.dtype), x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(np.where(mask, 0.0, grad))

    return Tensor._make(data, (x,), backward, "masked_fill")


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    condition = np.asarray(condition, dtype=bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(np.where(condition, grad, 0.0), a.shape))
        b._accumulate(unbroadcast(np.where(condition, 0.0, grad), b.shape))

    return Tensor._make(data, (a, b), backward, "where")


def cross_entropy(logits: Tensor, targets: np.ndarray, weight: Optional[np.ndarray] = None) -> Tensor:
    """Mean cross-entropy between ``logits`` (n, classes) and integer targets.

    ``weight`` optionally re-weights classes (the DeepMatcher positive-weight
    trick for imbalanced data).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects (batch, classes) logits")
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(n), targets]
    if weight is None:
        return -picked.mean()
    w = Tensor(np.asarray(weight, dtype=logits.data.dtype)[targets])
    return -(picked * w).sum() / float(w.data.sum())


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable mean BCE on raw logits."""
    targets_arr = np.asarray(targets, dtype=logits.data.dtype)
    x = logits.data
    loss_data = np.maximum(x, 0) - x * targets_arr + np.log1p(np.exp(-np.abs(x)))
    n = loss_data.size

    def backward(grad: np.ndarray) -> None:
        p = 1.0 / (1.0 + np.exp(-x))
        logits._accumulate(grad * (p - targets_arr))

    out = Tensor._make(loss_data, (logits,), backward, "bce_logits")
    return out.mean() if n > 1 else out.reshape(())


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    diff = pred - Tensor(np.asarray(target, dtype=pred.data.dtype))
    return (diff * diff).mean()
