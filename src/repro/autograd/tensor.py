"""The :class:`Tensor` class: a numpy array that records its history.

Each differentiable operation returns a new ``Tensor`` holding references to
its parent tensors and a closure that, given the gradient of the loss with
respect to the output, accumulates gradients into the parents.  Calling
``backward()`` on a scalar tensor runs those closures in reverse topological
order.

Broadcasting follows numpy semantics; gradients flowing into a broadcast
operand are reduced back to the operand's shape by :func:`unbroadcast`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

_state = threading.local()
_DEFAULT_DTYPE = np.float32

#: Op-level profiler hook, installed by :mod:`repro.perf.profiler`.  ``None``
#: (the default) keeps the engine at zero profiling overhead: one global load
#: and an ``is None`` test per op.  When set, it is called as
#: ``hook(op_name, output_nbytes)`` at every op boundary.
_profile_hook = None

#: Write-sanitizer hook, installed by :mod:`repro.analysis.sanitizer`.  When
#: set, it is called as ``hook(out, parents, backward)`` for every recorded
#: graph node so the sanitizer can freeze the arrays the node can observe.
_sanitize_hook = None


def set_default_dtype(dtype) -> None:
    """Set the dtype used for newly created tensors (float32 or float64)."""
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype).type
    if dtype not in (np.float32, np.float64):
        raise ValueError("default dtype must be float32 or float64")
    _DEFAULT_DTYPE = dtype


def get_default_dtype():
    """Return the dtype used for newly created tensors."""
    return _DEFAULT_DTYPE


def _grad_enabled() -> bool:
    return getattr(_state, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    previous = _grad_enabled()
    _state.grad_enabled = False
    try:
        yield
    finally:
        _state.grad_enabled = previous


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


class Tensor:
    """A multi-dimensional array supporting reverse-mode differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")
    __array_priority__ = 100  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _op: str = "",
    ):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(_DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = tuple(_parents) if self.requires_grad else ()
        self._op = _op

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_txt = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_txt})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (detached view)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        if _profile_hook is not None:
            _profile_hook(op, data.nbytes if isinstance(data, np.ndarray) else 0)
        if not _grad_enabled():
            # Inference fast path: no parent tuple, no requires_grad scan, no
            # backward closure retained — the graph is never recorded.
            arr = data if isinstance(data, np.ndarray) else np.asarray(data)
            if arr.dtype not in (np.float32, np.float64):
                arr = arr.astype(_DEFAULT_DTYPE)
            out = Tensor.__new__(Tensor)
            out.data = arr
            out.grad = None
            out.requires_grad = False
            out._backward = None
            out._parents = ()
            out._op = op
            return out
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents if requires else (), _op=op)
        if requires:
            out._backward = backward
            if _sanitize_hook is not None:
                _sanitize_hook(out, parents, backward)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to 1 for scalar tensors; non-scalar tensors require
        an explicit output gradient of matching shape.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(f"grad shape {grad.shape} != tensor shape {self.data.shape}")

        order: list[Tensor] = []
        visited: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        hook = _profile_hook
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                if hook is not None:
                    # Boundary timing in the profiler attributes the elapsed
                    # time since the last event to this closure.
                    hook("bwd:" + node._op, 0)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, value: ArrayLike) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        if isinstance(value, (int, float)):
            # Keep scalar constants in this tensor's dtype; otherwise numpy
            # promotes float32 computations to float64 silently.
            return Tensor(np.asarray(value, dtype=self.data.dtype))
        return Tensor(value)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other._accumulate(unbroadcast(grad, other.shape))

        return Tensor._make(data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other._accumulate(unbroadcast(-grad, other.shape))

        return Tensor._make(data, (self, other), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad * other.data, self.shape))
            other._accumulate(unbroadcast(grad * self.data, other.shape))

        return Tensor._make(data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return Tensor._make(data, (self, other), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward, "pow")

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # inner product -> scalar
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            if a.ndim == 1:  # (k,) @ (..., k, n) -> (..., n)
                ga = (grad[..., None, :] * b).sum(axis=-1)
                self._accumulate(unbroadcast(ga, a.shape))
                gb = a[:, None] * grad[..., None, :]
                other._accumulate(unbroadcast(gb, b.shape))
                return
            if b.ndim == 1:  # (..., m, k) @ (k,) -> (..., m)
                ga = grad[..., :, None] * b
                self._accumulate(unbroadcast(ga, a.shape))
                gb = (grad[..., :, None] * a).sum(axis=tuple(range(grad.ndim - 1)) + (grad.ndim - 1,))
                other._accumulate(unbroadcast(gb, b.shape))
                return
            ga = grad @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(unbroadcast(ga, a.shape))
            other._accumulate(unbroadcast(gb, b.shape))

        return Tensor._make(data, (self, other), backward, "matmul")

    # Comparison operators return plain boolean arrays (no gradient).
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward, "reshape")

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(original_shape, dtype=self.data.dtype)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward, "getitem")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            d = data
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
                    d = np.expand_dims(d, a)
            mask = (self.data == d).astype(self.data.dtype)
            # Split gradient equally between ties to keep gradcheck happy.
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0)
            self._accumulate(mask * g)

        return Tensor._make(data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Elementwise math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._make(data, (self,), backward, "sqrt")

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data**2))

        return Tensor._make(data, (self,), backward, "tanh")

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward, "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward, "clip")


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a tensor from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape).astype(_DEFAULT_DTYPE), requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            t._accumulate(grad[tuple(index)])

    return Tensor._make(data, tensors, backward, "concat")


def broadcast_to(t: Tensor, shape: tuple) -> Tensor:
    """Broadcast ``t`` to ``shape`` without copying (differentiable).

    The forward result is a read-only numpy view; the backward pass reduces
    the incoming gradient back to ``t``'s shape via :func:`unbroadcast`.
    Replaces the ``x * ones(shape)`` tiling idiom, which materializes both
    the ones array and the product.
    """
    t = t if isinstance(t, Tensor) else Tensor(t)
    shape = tuple(int(d) for d in shape)
    data = np.broadcast_to(t.data, shape)

    def backward(grad: np.ndarray) -> None:
        t._accumulate(unbroadcast(grad, t.shape))

    return Tensor._make(data, (t,), backward, "broadcast")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            t._accumulate(np.take(grad, i, axis=axis))

    return Tensor._make(data, tensors, backward, "stack")
