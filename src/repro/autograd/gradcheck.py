"""Numerical gradient checking used by the test suite to validate every op."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Compare analytic gradients of ``fn(*inputs).sum()`` with central differences.

    Inputs should be float64 tensors with ``requires_grad=True``.  Raises
    ``AssertionError`` with a diagnostic on mismatch; returns True on success.
    """
    for x in inputs:
        if x.data.dtype != np.float64:
            raise ValueError("gradcheck requires float64 inputs for accuracy")
        x.grad = None

    out = fn(*inputs)
    loss = out.sum() if out.size > 1 else out
    loss.backward()
    analytic = [None if x.grad is None else x.grad.copy() for x in inputs]

    for idx, x in enumerate(inputs):
        numeric = np.zeros_like(x.data)
        flat = x.data.reshape(-1)
        num_flat = numeric.reshape(-1)
        # Central differencing *must* perturb the live payload in place so
        # fn(*inputs) sees the nudged value — the element is restored exactly
        # (same float, same bits) before the next probe, so the graph never
        # observes a net mutation.  The only sanctioned R002 exception.
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps  # repro: noqa[R002] -- restored below, bit-exact
            plus = float(fn(*inputs).sum().item())
            flat[i] = original - eps  # repro: noqa[R002] -- restored below, bit-exact
            minus = float(fn(*inputs).sum().item())
            flat[i] = original  # repro: noqa[R002] -- exact restore of the probe
            num_flat[i] = (plus - minus) / (2 * eps)
        got = analytic[idx] if analytic[idx] is not None else np.zeros_like(numeric)
        if not np.allclose(got, numeric, atol=atol, rtol=rtol):
            worst = np.abs(got - numeric).max()
            raise AssertionError(
                f"gradcheck failed for input {idx}: max abs error {worst:.3e}\n"
                f"analytic:\n{got}\nnumeric:\n{numeric}"
            )
    return True
