"""``repro.store`` — the offline embedding store and its serving scorer.

Splits HierGAT at the encoder/GAT boundary: ``repro embed`` precomputes
the frozen-encoder half (WpC token embeddings + attribute summaries) into
checksummed, memory-mapped ``.npy`` shards; online, a
:class:`StoreBackedScorer` replays them straight into the pair-level GAT
head.  See ``docs/PERFORMANCE.md`` for the serving model and the
quantization parity gate.
"""

from repro.store.embedstore import (
    DEFAULT_SHARD_SIZE,
    EmbeddingStore,
    StoreBuildError,
    StoredRecord,
    StoreStats,
    build_store,
    encode_record,
    stable_record_key,
    store_cache,
    weights_digest,
)
from repro.store.quant import STORE_DTYPES, dequantize, quantize, quantized_matmul
from repro.store.scorer import StoreBackedScorer, parity_report

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "EmbeddingStore",
    "STORE_DTYPES",
    "StoreBackedScorer",
    "StoreBuildError",
    "StoredRecord",
    "StoreStats",
    "build_store",
    "dequantize",
    "encode_record",
    "parity_report",
    "quantize",
    "quantized_matmul",
    "stable_record_key",
    "store_cache",
    "weights_digest",
]
