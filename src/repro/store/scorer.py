"""Store-backed tier-1 scoring: only the pair-level GAT head runs online.

:class:`StoreBackedScorer` wraps a fitted ``HierGAT``.  For each request
chunk it assembles the precomputed WpC embeddings and attribute summaries
of every record from the :class:`~repro.store.embedstore.EmbeddingStore`
(falling through to the live encoder on a miss — counted), stacks them
into one ``(2K·B, W, dim)`` megabatch across *all pairs and slots of the
chunk*, and runs ``HierGATNetwork.head_from_wpc``: attribute comparison,
entity comparison, and the classification head.  The frozen LM encoder,
the contextual embedder, and the attribute summarizer never run on the
hot path when the store is warm.

Because stored records keep their true token length and positional
encodings are mask-based, replaying them into a batch of any padded width
reproduces the live values at every valid position; in float32 store mode
the store-backed scores are bitwise identical to scoring with the store
bypassed (see :func:`parity_report`, enforced by tests and the ``--store``
benchmark mode).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import Tensor, functional as F, no_grad
from repro.data.schema import EntityPair
from repro.matchers.base import Matcher
from repro.store.embedstore import EmbeddingStore, StoredRecord, encode_record


class StoreBackedScorer(Matcher):
    """A drop-in tier-1 ``Matcher`` serving the encoder half from the store.

    Scores are real match probabilities (the ``Matcher.scores`` contract);
    the decision threshold delegates to the wrapped matcher so calibration
    survives the wrap.  ``batch_size=None`` uses the matcher's configured
    batch size (what the serving tier does); benchmarks may pass a larger
    chunk to amortize the head over more pairs at once.
    """

    name = "HierGAT(store)"

    def __init__(self, matcher, store: Optional[EmbeddingStore] = None,
                 batch_size: Optional[int] = None, pad_width: int = 0):
        self.matcher = matcher
        self.store = store
        self.batch_size = batch_size
        #: Minimum padded token width of every forward chunk.  0 keeps the
        #: legacy behaviour (pad to the chunk's own maximum block length).
        #: A fixed positive width makes per-pair scores *bitwise independent
        #: of batch composition*: every chunk whose blocks fit inside
        #: ``pad_width`` runs the head at the same padded width, AND the
        #: chunk itself is padded to a full ``batch_size`` pairs (by
        #: repeating the last pair; the surplus rows are sliced off), so
        #: every forward has one fixed shape.  Fixing the token width alone
        #: is not enough: BLAS kernels pick blocking strategies by matrix
        #: size, so the same logical row can differ in its last ulp between
        #: a 3-pair and a 6-pair batch (observable at float64).  The serving
        #: cluster's cross-request batch coalescing relies on this for
        #: tier-1 parity (see serving/cluster.py).
        self.pad_width = pad_width
        #: Records encoded live because the store could not serve them.
        self.live_fallbacks = 0

    @property
    def threshold(self) -> float:
        return self.matcher.threshold

    @threshold.setter
    def threshold(self, value: float) -> None:
        self.matcher.threshold = value

    @property
    def scale(self):
        """The wrapped matcher's Scale (the serving layer reads batch_size)."""
        return self.matcher.scale

    # ------------------------------------------------------------------
    def scores(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        network = self.matcher._network
        if network is None:
            raise RuntimeError("fit() must be called first")
        batch_size = self.batch_size or self.matcher.scale.batch_size
        network.eval()
        out: List[float] = []
        with no_grad():
            for start in range(0, len(pairs), batch_size):
                chunk = list(pairs[start:start + batch_size])
                real = len(chunk)
                if self.pad_width and real < batch_size:
                    chunk.extend([chunk[-1]] * (batch_size - real))
                logits = self._forward_chunk(network, chunk)
                probs = F.softmax(logits, axis=-1).data[:real, 1]
                out.extend(float(p) for p in probs)
        return np.asarray(out)

    def predict(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        return (self.scores(pairs) >= self.threshold).astype(np.int64)

    # ------------------------------------------------------------------
    def _record(self, network, entity) -> StoredRecord:
        """Store lookup with counted live-encoder fallback."""
        if self.store is not None:
            record = self.store.get(entity)
            if record is not None:
                return record
            self.live_fallbacks += 1
        return encode_record(network, self.matcher._encoder, entity,
                             self.matcher._num_attributes)

    def _forward_chunk(self, network, chunk: List[EntityPair]) -> Tensor:
        """Assemble one cross-pair megabatch and run the GAT head.

        Row layout matches ``head_from_wpc``: slot-major per side — rows
        ``[k·B:(k+1)·B]`` hold slot ``k`` of every left record, the second
        half the right side.  Stored blocks land at their true length in a
        zero-filled ``(2K·B, W, dim)`` buffer; zeros at masked positions
        are inert downstream (masked softmax underflows them to exact 0).
        """
        k_slots = self.matcher._num_attributes
        batch = len(chunk)
        sides = ([self._record(network, p.left) for p in chunk],
                 [self._record(network, p.right) for p in chunk])
        width = max(block.shape[0]
                    for records in sides
                    for record in records
                    for block in record.wpc)
        width = max(width, self.pad_width)
        total = 2 * k_slots * batch
        wpc = np.zeros((total, width, network.dim), dtype=np.float32)
        mask = np.zeros((total, width), dtype=bool)
        attrs = np.zeros((total, network.dim), dtype=np.float32)
        for side, records in enumerate(sides):
            for b, record in enumerate(records):
                for k in range(k_slots):
                    row = side * k_slots * batch + k * batch + b
                    block = record.wpc[k]
                    length = block.shape[0]
                    wpc[row, :length] = block
                    mask[row, :length] = True
                    attrs[row] = record.attrs[k]
        return network.head_from_wpc(Tensor(wpc), mask, k_slots, batch,
                                     attrs=Tensor(attrs))

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {"live_fallbacks": self.live_fallbacks}
        if self.store is not None:
            out["dtype"] = self.store.dtype
            out["store"] = self.store.stats.as_dict()
        return out


def parity_report(matcher, store: EmbeddingStore,
                  pairs: Sequence[EntityPair],
                  batch_size: Optional[int] = None) -> Dict[str, object]:
    """Score ``pairs`` store-backed and live-only; report the difference.

    ``bitwise`` must be ``True`` for float32 stores (the acceptance
    invariant); quantized stores report ``max_abs_diff`` and leave the
    accuracy judgement to the ΔF1 gate.
    """
    backed = StoreBackedScorer(matcher, store=store, batch_size=batch_size)
    live = StoreBackedScorer(matcher, store=None, batch_size=batch_size)
    with_store = backed.scores(pairs)
    without = live.scores(pairs)
    diff = np.abs(with_store - without)
    return {
        "pairs": len(pairs),
        "bitwise": bool(np.array_equal(with_store, without)),
        "max_abs_diff": float(diff.max()) if diff.size else 0.0,
        "store_hits": store.stats.hits,
        "live_fallbacks": backed.live_fallbacks,
    }
