"""Quantized storage formats for the embedding store.

Stored WpC embeddings dominate the store's footprint (``(tokens, dim)``
float32 per record-slot), so the store can persist them in three formats:

``float32``
    Exact.  Dequantization is the identity, which is what gives the store's
    float32 mode its bitwise-parity guarantee against the live encoder.
``float16``
    Half the bytes; values round-trip through IEEE half precision.  The
    scale factor is 1.0 — the dtype itself is the compression.
``int8``
    Symmetric linear quantization: one float32 *scale* per record-slot
    (``max |x| / 127``), values rounded to ``[-127, 127]``.  Scales are
    persisted in the shard manifest alongside the row offsets, never
    recomputed at read time.

Quantization is only applied to the *stored* artifact; the online GAT head
always computes in float32.  :func:`quantized_matmul` fuses the
dequantization scale into a dense projection (``(q @ w) · s`` instead of
``(q · s) @ w``) so consumers that start with a matmul never materialize
the dequantized activations; the store's build-time scale audit uses it to
verify persisted scales against the exact float32 projection.

Accuracy is policed, not assumed: the quantized serving mode is gated by a
ΔF1 ≤ 0.5 parity check on the Table 4 quick subset (see
``benchmarks/run_perf.py --store`` and the gate test in
``tests/test_store.py``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Storage dtypes the embedding store accepts.
STORE_DTYPES = ("float32", "float16", "int8")

#: Largest magnitude representable by the int8 grid (symmetric, no -128).
_INT8_PEAK = 127.0


def quantize(arr: np.ndarray, dtype: str) -> Tuple[np.ndarray, float]:
    """Quantize a float array for storage; returns ``(stored, scale)``.

    ``dequantize(stored, scale)`` recovers float32 values — exactly for
    ``float32``, to half precision for ``float16``, and to one part in 127
    of the per-array peak for ``int8``.
    """
    arr = np.ascontiguousarray(arr, dtype=np.float32)
    if dtype == "float32":
        return arr, 1.0
    if dtype == "float16":
        return arr.astype(np.float16), 1.0
    if dtype == "int8":
        peak = float(np.max(np.abs(arr))) if arr.size else 0.0
        scale = peak / _INT8_PEAK if peak > 0.0 else 1.0
        q = np.clip(np.rint(arr / scale), -_INT8_PEAK, _INT8_PEAK)
        return q.astype(np.int8), scale
    raise ValueError(f"unknown store dtype {dtype!r}; choose from {STORE_DTYPES}")


def dequantize(stored: np.ndarray, scale: float) -> np.ndarray:
    """Recover float32 values from a stored array.

    For float32 input with unit scale this returns the array unchanged
    (same object — the bitwise-parity fast path); other dtypes are widened
    and rescaled into a fresh array.
    """
    if stored.dtype == np.float32 and scale == 1.0:
        return stored
    out = stored.astype(np.float32)
    if scale != 1.0:
        out *= np.float32(scale)
    return out


def quantized_matmul(stored: np.ndarray, scale: float,
                     weight: np.ndarray) -> np.ndarray:
    """Dense projection of quantized rows with the scale fused in.

    Computes ``dequantize(stored, scale) @ weight`` as ``(stored @ weight)
    · scale``: the integer (or half-precision) rows feed the matmul
    directly and the per-record scale is applied once to the small output,
    so the full-width dequantized activations are never materialized.
    Mathematically identical to dequantize-then-matmul; float rounding may
    differ in the last bits, which is why the quantized serving mode is
    accuracy-gated rather than parity-gated.
    """
    out = stored.astype(np.float32) @ np.ascontiguousarray(weight, dtype=np.float32)
    if scale != 1.0:
        out *= np.float32(scale)
    return out
