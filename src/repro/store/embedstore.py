"""The offline embedding store: frozen-encoder record embeddings on disk.

``repro embed`` materializes the frozen-encoder half of a fitted HierGAT —
the per-record WpC token embeddings plus the per-attribute summary vectors
— into memory-mapped ``.npy`` shards, so online requests skip straight to
the pair-level GAT head (see :class:`repro.store.scorer.StoreBackedScorer`
and ``HierGATNetwork.head_from_wpc``).

Layout of a store directory::

    manifest.json        dtype, dim, weights digest, checksums, row index
    shard-0000.npy       stacked WpC rows (total_tokens, dim), store dtype
    attrs-0000.npy       attribute summaries (records, K, dim), float32

Every record-slot occupies a contiguous row block in its shard; the
manifest maps ``stable_record_key(entity)`` to ``(shard, [offset, length]
per slot, scale per slot, attrs row)``.  Records are stored at their *true*
token length — mask-based positional encodings (see
``repro.nn.transformer.PositionalEncoding``) make the encoder outputs
width-invariant, so stored rows can be replayed into padded batches of any
width without changing any valid value.

Consistency and failure handling:

* **Staleness** — the manifest records a digest of the network weights and
  reads are keyed by :func:`repro.perf.cache.params_version`: the moment
  any optimizer step or ``load_state_dict`` bumps the version, every
  ``get`` misses (counted as ``stale_misses``) until the store is rebuilt
  and re-bound (R005: weight-derived artifacts thread the version).
* **Corruption** — shard files carry CRC32 checksums verified on first
  open; a damaged shard (fault site ``store.read``) is quarantined and all
  of its records fall through to the live encoder, counted in
  ``StoreStats.corrupt_shards`` / ``COUNTERS.store_corrupt_shards``.
* **Partial writes** — every file is written to a ``*.tmp.<pid>`` sibling
  and published with ``os.replace`` (fault site ``store.build`` sits
  between the two), so a build killed mid-write leaves no visible shard;
  leftovers are discarded (``COUNTERS.store_build_discards``) by the next
  build and a re-run of ``repro embed`` completes the store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.autograd import no_grad
from repro.perf.cache import get_cache, instance_token, params_version
from repro.reliability.counters import COUNTERS
from repro.reliability.faults import fault_point
from repro.reliability.retry import retry_with_backoff
from repro.store.quant import STORE_DTYPES, dequantize, quantize, quantized_matmul

MANIFEST_NAME = "manifest.json"
#: Records per shard file; small by production standards, but the point is
#: exercising the multi-shard paths at CI scale.
DEFAULT_SHARD_SIZE = 256

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISS = object()


class StoreBuildError(RuntimeError):
    """Raised when a store build produces an inconsistent artifact."""


def store_cache():
    """The bounded LRU fronting shard reads (perf cache registry name ``store``)."""
    return get_cache("store")


def stable_record_key(entity) -> str:
    """Process-independent record identity: uid + digest of attribute text.

    ``perf.cache.entity_key`` uses Python's salted ``hash()`` and is only
    stable within one process; the store outlives processes, so its keys
    digest the full attribute payload instead.
    """
    payload = repr(entity.attributes).encode("utf-8")
    return f"{entity.uid}:{hashlib.sha1(payload).hexdigest()[:16]}"


def weights_digest(network) -> str:
    """Digest of every network parameter — the store's staleness fingerprint."""
    digest = hashlib.sha1()
    state = network.state_dict()
    for name in sorted(state):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(state[name]).tobytes())
    return digest.hexdigest()


@dataclasses.dataclass
class StoredRecord:
    """One record's precomputed encoder outputs, dequantized to float32.

    ``wpc[k]`` is the ``(true_length_k, dim)`` WpC block of attribute slot
    ``k``; ``attrs`` stacks the K attribute summary vectors ``(K, dim)``.
    """

    wpc: List[np.ndarray]
    attrs: np.ndarray


@dataclasses.dataclass
class StoreStats:
    """Per-store serving counters (reported by ``InferenceService.stats``)."""

    #: Records served from the store (shard read or fronting LRU).
    hits: int = 0
    #: Records absent from the store — fell through to the live encoder.
    misses: int = 0
    #: Misses caused by a quarantined (checksum-failed) shard.
    corrupt_misses: int = 0
    #: Misses because the weights moved past the built ``params_version``.
    stale_misses: int = 0
    #: Distinct shards quarantined after checksum failure.
    corrupt_shards: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


def encode_record(network, encoder, entity, num_attributes: int) -> StoredRecord:
    """Run the frozen-encoder half for one record, at true token length.

    This single function is both the offline build path *and* the online
    store-miss fallback, so in float32 store mode a hit returns exactly the
    bytes a miss would compute — bitwise parity by construction.
    """
    wpc_slots: List[np.ndarray] = []
    attr_rows: List[np.ndarray] = []
    with no_grad():
        network.eval()
        for k in range(num_attributes):
            token_ids = encoder.attribute_ids(entity, k)
            ids = np.asarray([token_ids], dtype=np.int64)
            mask = np.ones((1, len(token_ids)), dtype=bool)
            wpc = network.encode_record_slot(ids, mask)
            attr = network.summarizer(wpc, mask)
            wpc_slots.append(np.array(wpc.data[0], dtype=np.float32))
            attr_rows.append(np.array(attr.data[0], dtype=np.float32))
    return StoredRecord(wpc=wpc_slots, attrs=np.stack(attr_rows))


# ----------------------------------------------------------------------
# Atomic file publication (the ``store.build`` fault site)
# ----------------------------------------------------------------------
def _publish_bytes(directory: Path, name: str, data: bytes) -> int:
    """Write ``data`` to ``directory/name`` atomically; return its CRC32.

    The bytes land in a ``*.tmp.<pid>`` sibling first and become visible
    only through ``os.replace``.  The ``store.build`` fault site sits
    between write and rename: an injected ``kill`` leaves a partial
    artifact that no manifest ever references, and injected ``transient``
    failures are absorbed by retry-with-backoff.
    """
    path = directory / name
    tmp = directory / f"{name}.tmp.{os.getpid()}"

    def attempt() -> None:
        with open(tmp, "wb") as fh:
            fh.write(data)
        fault_point("store.build", file=name)
        os.replace(tmp, path)

    retry_with_backoff(attempt, description=f"store publish {name}")
    return zlib.crc32(data)


def _array_bytes(array: np.ndarray) -> bytes:
    buf = io.BytesIO()
    np.save(buf, array)
    return buf.getvalue()


def _discard_partial_writes(directory: Path) -> None:
    """Remove ``*.tmp.*`` leftovers of interrupted builds (counted)."""
    for stale in directory.glob("*.tmp.*"):
        stale.unlink()
        COUNTERS.increment("store_build_discards")


def _audit_scales(index_rows, shard_array: np.ndarray,
                  probe_weight: np.ndarray, dtype: str) -> None:
    """Verify persisted scale factors against the exact projection.

    For every record-slot block the fused :func:`quantized_matmul` through
    ``probe_weight`` (the context attribute-pool projection) must agree
    with dequantize-then-matmul; a persisted scale that drifted from its
    rows would show up here before the shard is ever served.
    """
    tolerance = 1e-3 if dtype == "int8" else 1e-2
    for entry in index_rows:
        for (offset, length), scale in zip(entry["rows"], entry["scales"]):
            block = np.asarray(shard_array[offset:offset + length])
            fused = quantized_matmul(block, float(scale), probe_weight)
            exact = dequantize(block, float(scale)) @ probe_weight
            if not np.allclose(fused, exact, atol=tolerance, rtol=tolerance):
                raise StoreBuildError(
                    f"scale audit failed for dtype {dtype!r}: fused projection "
                    f"diverged from the dequantized reference")


# ----------------------------------------------------------------------
# Build
# ----------------------------------------------------------------------
def build_store(directory, matcher, entities: Iterable,
                dtype: str = "float32",
                shard_size: int = DEFAULT_SHARD_SIZE) -> "EmbeddingStore":
    """Materialize the frozen-encoder embeddings of ``entities`` on disk.

    ``matcher`` is a fitted ``HierGAT``; duplicate records (same
    :func:`stable_record_key`) are encoded once.  Returns the freshly
    built store, already bound to the matcher's network.
    """
    if dtype not in STORE_DTYPES:
        raise ValueError(f"unknown store dtype {dtype!r}; choose from {STORE_DTYPES}")
    network = matcher._network
    encoder = matcher._encoder
    num_attributes = matcher._num_attributes
    if network is None or encoder is None:
        raise RuntimeError("matcher must be fitted before building a store")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    _discard_partial_writes(directory)

    unique = {}
    for entity in entities:
        unique.setdefault(stable_record_key(entity), entity)
    keys = list(unique)

    index: Dict[str, dict] = {}
    checksums: Dict[str, int] = {}
    probe = np.ascontiguousarray(network.context.attr_pool.weight.data,
                                 dtype=np.float32)
    with no_grad():
        network.eval()
        for shard_id, start in enumerate(range(0, max(len(keys), 1), shard_size)):
            shard_keys = keys[start:start + shard_size]
            blocks: List[np.ndarray] = []
            attr_rows: List[np.ndarray] = []
            shard_index: List[dict] = []
            offset = 0
            for row, key in enumerate(shard_keys):
                record = encode_record(network, encoder, unique[key], num_attributes)
                slot_rows, scales = [], []
                for k in range(num_attributes):
                    stored, scale = quantize(record.wpc[k], dtype)
                    blocks.append(stored)
                    slot_rows.append([offset, stored.shape[0]])
                    offset += stored.shape[0]
                    scales.append(scale)
                attr_rows.append(record.attrs)
                entry = {"shard": shard_id, "rows": slot_rows,
                         "scales": scales, "attrs_row": row}
                index[key] = entry
                shard_index.append(entry)
            if blocks:
                shard_array = np.concatenate(blocks, axis=0)
                attrs_array = np.stack(attr_rows).astype(np.float32)
            else:
                shard_array = np.zeros((0, network.dim), dtype=np.float32)
                attrs_array = np.zeros((0, num_attributes, network.dim),
                                       dtype=np.float32)
            _audit_scales(shard_index, shard_array, probe, dtype)
            shard_name = f"shard-{shard_id:04d}.npy"
            attrs_name = f"attrs-{shard_id:04d}.npy"
            checksums[shard_name] = _publish_bytes(
                directory, shard_name, _array_bytes(shard_array))
            checksums[attrs_name] = _publish_bytes(
                directory, attrs_name, _array_bytes(attrs_array))

    manifest = {
        "format": 1,
        "dtype": dtype,
        "dim": network.dim,
        "num_attributes": num_attributes,
        "records": len(keys),
        "weights_digest": weights_digest(network),
        "checksums": checksums,
        "index": index,
    }
    payload = json.dumps(manifest, sort_keys=True).encode("utf-8")
    _publish_bytes(directory, MANIFEST_NAME, payload)

    store = EmbeddingStore.open(directory)
    store.bind(network)
    return store


# ----------------------------------------------------------------------
# Read side
# ----------------------------------------------------------------------
class EmbeddingStore:
    """Read-only view of a built store directory, fronted by a bounded LRU.

    ``get(entity)`` returns a :class:`StoredRecord` or ``None`` (absent /
    stale / corrupt shard) — callers fall through to the live encoder on
    ``None`` and every outcome is counted in :attr:`stats`.  The fronting
    LRU lives in the global perf-cache registry under the name ``store``;
    its keys include :func:`params_version`, so a weight bump orphans every
    cached entry along with the shards themselves.
    """

    def __init__(self, directory, manifest: dict):
        self.directory = Path(directory)
        self.manifest = manifest
        self.stats = StoreStats()
        self._arrays: Dict[str, Optional[np.ndarray]] = {}
        self._corrupt: set = set()
        self._bound_version: Optional[int] = None

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory) -> "EmbeddingStore":
        """Load a store's manifest; raises ``FileNotFoundError`` if absent
        (which is exactly what a build killed before manifest publication
        looks like — partial shards are invisible without it)."""
        directory = Path(directory)
        path = directory / MANIFEST_NAME
        with open(path, "rb") as fh:
            manifest = json.loads(fh.read().decode("utf-8"))
        return cls(directory, manifest)

    @property
    def dtype(self) -> str:
        return self.manifest["dtype"]

    @property
    def records(self) -> int:
        return self.manifest["records"]

    def __len__(self) -> int:
        return len(self.manifest["index"])

    # ------------------------------------------------------------------
    def bind(self, network) -> bool:
        """Pin the store to the current weights if the digest matches.

        Binding records the current :func:`params_version`; every ``get``
        re-checks it, so the store self-invalidates the moment training or
        a weight load bumps the version.  Returns ``False`` (store serves
        nothing) when the network's weights are not the ones the store was
        built from.
        """
        if weights_digest(network) == self.manifest["weights_digest"]:
            self._bound_version = params_version()
            return True
        self._bound_version = None
        return False

    def valid(self) -> bool:
        """True while bound weights are current (no bump since ``bind``)."""
        return (self._bound_version is not None
                and params_version() == self._bound_version)

    # ------------------------------------------------------------------
    def get(self, entity) -> Optional[StoredRecord]:
        """The record's stored embeddings, or ``None`` to fall through live."""
        if not self.valid():
            self.stats.stale_misses += 1
            return None
        key = stable_record_key(entity)
        entry = self.manifest["index"].get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        cache_key = ("store", key, params_version(), instance_token(self))
        cached = store_cache().get(cache_key, _MISS)
        if cached is not _MISS:
            self.stats.hits += 1
            return cached
        record = self._read(entry)
        if record is None:
            self.stats.misses += 1
            self.stats.corrupt_misses += 1
            return None
        store_cache().put(cache_key, record)
        self.stats.hits += 1
        return record

    # ------------------------------------------------------------------
    def _read(self, entry: dict) -> Optional[StoredRecord]:
        shard_id = entry["shard"]
        shard = self._open_verified(f"shard-{shard_id:04d}.npy")
        attrs = self._open_verified(f"attrs-{shard_id:04d}.npy")
        if shard is None or attrs is None:
            return None
        wpc: List[np.ndarray] = []
        for (offset, length), scale in zip(entry["rows"], entry["scales"]):
            block = np.array(shard[offset:offset + length])
            wpc.append(dequantize(block, float(scale)))
        attr = np.array(attrs[entry["attrs_row"]], dtype=np.float32)
        return StoredRecord(wpc=wpc, attrs=attr)

    def _open_verified(self, name: str) -> Optional[np.ndarray]:
        """Checksum-verified, memory-mapped shard (``store.read`` fault site).

        The CRC of the on-disk bytes must match the manifest before the
        file is mapped; a mismatch — real damage or an injected ``corrupt``
        fault — quarantines the shard for the store's lifetime and its
        records fall through to the live encoder.
        """
        if name in self._corrupt:
            return None
        cached = self._arrays.get(name)
        if cached is not None:
            return cached
        path = self.directory / name

        def read_crc():
            kind = fault_point("store.read", shard=name)
            crc = 0
            with open(path, "rb") as fh:
                for chunk in iter(lambda: fh.read(1 << 20), b""):
                    crc = zlib.crc32(chunk, crc)
            return crc, kind

        crc, kind = retry_with_backoff(read_crc, description=f"store read {name}")
        if kind == "corrupt":
            # Reader-side damage per the fault contract: the bytes we just
            # summed are treated as flipped, so the checksum gate must trip.
            crc ^= 0x1
        if crc != self.manifest["checksums"][name]:
            self._corrupt.add(name)
            self.stats.corrupt_shards += 1
            COUNTERS.increment("store_corrupt_shards")
            return None
        array = np.load(path, mmap_mode="r")
        self._arrays[name] = array
        return array
