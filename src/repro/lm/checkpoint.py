"""Simulated pre-trained checkpoints, built once and cached on disk.

Real Ditto/HierGAT load HuggingFace checkpoints whose power comes from
large-scale pre-training.  Offline we reproduce that pipeline shape:

1. A **global vocabulary** built from a large mixed-domain synthetic corpus
   (all benchmark domains, held-out generation seeds) with hashed OOV
   buckets — one vocabulary shared by every dataset, like a real tokenizer.
2. A **pre-training phase**: the encoder is trained on a balanced
   match/non-match pseudo-pair task over that corpus (the ER analogue of the
   transfer learning Brunner & Stockinger 2020 showed works for ER),
   bootstrapped from PPMI+SVD corpus embeddings.
3. The resulting weights are cached under ``.lm_cache/`` keyed by
   architecture, so every experiment pays the pre-training cost once.

Fine-tuning per dataset then mirrors the paper's Section 5.3 training
process: "This process combines the training of [the model] with the
fine-tuning of the pre-trained LM."
"""

from __future__ import annotations

import functools
import hashlib
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor, functional as F
from repro.autograd.optim import Adam, clip_grad_norm
from repro.config import Scale, get_scale
from repro.data.schema import EntityPair
from repro.lm.registry import LANGUAGE_MODELS, PretrainedLM, load_language_model
from repro.nn import Linear, Module
from repro.reliability.counters import COUNTERS
from repro.reliability.faults import CorruptDataFault, fault_point
from repro.reliability.retry import retry_with_backoff
from repro.text.tokenizer import tokenize
from repro.text.vocab import NAN_TOKEN, Vocabulary

#: Generation seed base for the pre-training corpus — far away from the
#: benchmark seeds so no benchmark instance appears in pre-training.
_PRETRAIN_SEED = 880_000

_memory_cache: Dict[str, Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]] = {}


def cache_dir() -> Path:
    """Directory for cached checkpoints (override via $REPRO_LM_CACHE)."""
    override = os.environ.get("REPRO_LM_CACHE")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / ".lm_cache"


@functools.lru_cache(maxsize=1)
def pretraining_pool(pairs_per_domain: int = 700) -> Tuple[EntityPair, ...]:
    """Balanced mixed-domain pseudo-pair pool (easy + hard negatives)."""
    import dataclasses

    from repro.data.generators import generate_pairs
    from repro.data.magellan import MAGELLAN_DATASETS

    pool: List[EntityPair] = []
    for i, info in enumerate(MAGELLAN_DATASETS.values()):
        easy = dataclasses.replace(info.spec, hard_negative_fraction=0.25)
        pool.extend(generate_pairs(easy, pairs_per_domain, 0.5, seed=_PRETRAIN_SEED + i))
        pool.extend(generate_pairs(info.spec, pairs_per_domain, 0.5, seed=_PRETRAIN_SEED + 1000 + i))
    rng = np.random.default_rng(_PRETRAIN_SEED)
    order = rng.permutation(len(pool))
    return tuple(pool[int(i)] for i in order)


@functools.lru_cache(maxsize=1)
def pretraining_corpus() -> Tuple[Tuple[str, ...], ...]:
    """Token lists from the pre-training pool (vocabulary / PPMI input)."""
    corpus: List[Tuple[str, ...]] = []
    for pair in pretraining_pool()[:4000]:
        for entity in (pair.left, pair.right):
            for key, value in entity.attributes:
                corpus.append(tuple(tokenize(key) + tokenize(value)))
    return tuple(corpus)


@functools.lru_cache(maxsize=1)
def global_vocabulary() -> Vocabulary:
    """The shared tokenizer vocabulary (like a real checkpoint's vocab)."""
    return Vocabulary.from_corpus(
        [list(t) for t in pretraining_corpus()], min_freq=1, num_oov_buckets=512,
    )


class SequencePairClassifier(Module):
    """Encoder + binary head over [CLS] — the pre-training (and Ditto) network."""

    def __init__(self, lm: PretrainedLM, rng: np.random.Generator):
        super().__init__()
        self.lm = lm
        self.head = Linear(lm.dim, 2, rng=rng)

    def forward(self, ids: np.ndarray, mask: np.ndarray) -> Tensor:
        return self.head(self.lm.encode_cls(ids, pad_mask=mask))


def _cache_key(name: str, scale: Scale, steps: int) -> str:
    spec = LANGUAGE_MODELS[name]
    raw = f"{name}-d{spec.dim(scale)}-l{spec.layers(scale)}-h{scale.num_heads}-t{scale.max_tokens}-s{steps}-v5"
    return hashlib.blake2b(raw.encode(), digest_size=8).hexdigest() + "-" + raw


def default_pretrain_steps(scale: Scale) -> int:
    """Pre-training length: enough to learn comparison at bench scale,
    short at test scale."""
    return 300 if scale.max_pairs is not None and scale.max_pairs <= 100 else 4000


def _single_attribute_view(pair: EntityPair, rng: np.random.Generator) -> EntityPair:
    """Strip a pair down to one shared attribute slot.

    Mixing these into pre-training teaches the encoder *attribute-level*
    comparison, which HierGAT's attribute comparison layer (Section 5.2.1)
    relies on; full-entity sequences alone do not transfer to it.
    """
    from repro.data.schema import Entity

    slots = min(len(pair.left.attributes), len(pair.right.attributes))
    k = int(rng.integers(0, slots))
    key_l, value_l = pair.left.attributes[k]
    key_r, value_r = pair.right.attributes[k]
    # Avoid label noise: a non-match whose stripped attribute happens to be
    # identical (shared brand inside a family) would be mislabeled.
    if pair.label == 0 and value_l == value_r:
        return pair
    if pair.label == 1 and NAN_TOKEN in (value_l, value_r):
        return pair
    return EntityPair(
        left=Entity.from_dict(pair.left.uid, {key_l: value_l}),
        right=Entity.from_dict(pair.right.uid, {key_r: value_r}),
        label=pair.label,
    )


def _pretrain(name: str, scale: Scale, steps: int) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    from repro.matchers.encoding import PairEncoder

    vocab = global_vocabulary()
    corpus = [list(t) for t in pretraining_corpus()]
    rng = np.random.default_rng(scale.seed)
    lm = load_language_model(name, vocab, corpus=corpus, scale=scale, rng=rng)
    network = SequencePairClassifier(lm, rng)
    encoder = PairEncoder(vocab, max_tokens=scale.max_tokens)
    pool = pretraining_pool()
    optimizer = Adam(network.parameters(), lr=1e-3)
    network.train()
    for _ in range(steps):
        idx = rng.integers(0, len(pool), size=32)
        batch = []
        for i in idx:
            pair = pool[int(i)]
            if rng.random() < 0.4:  # attribute-level comparison mixture
                pair = _single_attribute_view(pair, rng)
            batch.append(pair)
        logits = network(*encoder.encode(batch))
        loss = F.cross_entropy(logits, np.array([p.label for p in batch]))
        optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(network.parameters(), 5.0)
        optimizer.step()
    network.eval()
    return lm.state_dict(), network.head.state_dict()


def _read_checkpoint(path: Path) -> Optional[Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]]:
    """Load a cached checkpoint; on any corruption, discard the file.

    Interrupted writes used to leave truncated ``.npz`` files behind, which
    then crashed every later run with ``zipfile.BadZipFile``.  Any read/parse
    failure here is treated as "no cache": the bad file is removed, the
    rebuild is counted in ``COUNTERS.checkpoint_rebuilds``, and the caller
    rebuilds it.  The ``lm.checkpoint.read`` fault site raises transient IO
    errors *before* the parse (retried by :func:`load_checkpoint`) and
    injects corruption inside it.
    """
    import zipfile

    fault_point("lm.checkpoint.read", path=path.name)  # may raise transient
    try:
        if fault_point("lm.checkpoint.parse", path=path.name) == "corrupt":
            raise CorruptDataFault(f"injected corrupt checkpoint {path.name}")
        with np.load(path) as data:
            lm_state = {k[3:]: data[k] for k in data.files if k.startswith("lm:")}
            head_state = {k[5:]: data[k] for k in data.files if k.startswith("head:")}
        if not lm_state:
            raise KeyError("checkpoint has no lm arrays")
        return lm_state, head_state
    except (zipfile.BadZipFile, OSError, ValueError, KeyError, EOFError):
        try:
            path.unlink()
        except OSError:
            pass
        COUNTERS.increment("checkpoint_rebuilds")
        return None


def _write_checkpoint(path: Path, lm_state: Dict[str, np.ndarray],
                      head_state: Dict[str, np.ndarray]) -> None:
    """Atomically persist a checkpoint (temp file + ``os.replace``).

    ``np.savez`` appends ``.npz`` to string paths, so we hand it an open file
    object; the rename is atomic on POSIX, so readers never see a partial
    file even if this process dies mid-write.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fault_point("lm.checkpoint.write", path=path.name)  # may raise transient
    payload = {f"lm:{k}": v for k, v in lm_state.items()}
    payload.update({f"head:{k}": v for k, v in head_state.items()})
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    if fault_point("lm.checkpoint.corrupt", path=path.name) == "corrupt":
        # Simulated disk corruption *after* the atomic rename — the one
        # failure atomicity cannot prevent; readers self-heal via
        # _read_checkpoint.
        data = path.read_bytes()
        path.write_bytes(data[: max(16, len(data) // 3)])


def load_checkpoint(name: str, scale: Optional[Scale] = None,
                    steps: Optional[int] = None) -> Tuple[PretrainedLM, Dict[str, np.ndarray]]:
    """Return a fresh :class:`PretrainedLM` with pre-trained weights, plus the
    pre-training head's state dict (useful as a warm start).

    Checkpoints are cached in memory and on disk; delete ``.lm_cache/`` to
    force a rebuild.
    """
    scale = scale or get_scale()
    steps = default_pretrain_steps(scale) if steps is None else steps
    key = _cache_key(name, scale, steps)

    if key not in _memory_cache:
        path = cache_dir() / f"{key}.npz"
        states = retry_with_backoff(
            lambda: _read_checkpoint(path)) if path.exists() else None
        if states is None:
            states = _pretrain(name, scale, steps)
            retry_with_backoff(lambda: _write_checkpoint(path, *states))
        _memory_cache[key] = states

    lm_state, head_state = _memory_cache[key]
    lm = load_language_model(name, global_vocabulary(), corpus=None, scale=scale,
                             rng=np.random.default_rng(scale.seed))
    lm.load_state_dict(lm_state)
    return lm, {k: v.copy() for k, v in head_state.items()}
