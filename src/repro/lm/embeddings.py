"""Count-based distributional word embeddings (PPMI + truncated SVD).

Factorising the positive pointwise-mutual-information co-occurrence matrix is
a classic, GloVe-quality embedding method (Levy & Goldberg 2014) that needs
no gradient training — ideal for simulating "pre-trained" embeddings offline.
Words that co-occur (brand with its product line, style with its domain)
land near each other, giving the downstream matchers the same kind of
semantic prior real pre-trained embeddings provide.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from scipy import sparse

from repro.text.vocab import Vocabulary


def _randomized_svd(matrix, k: int, seed: int, oversample: int = 8,
                    power_iterations: int = 2):
    """Seeded randomized SVD (Halko et al. 2011) — deterministic, unlike
    ARPACK's ``svds``, which varies run-to-run in degenerate subspaces."""
    n = matrix.shape[0]
    rng = np.random.default_rng(seed)
    width = min(k + oversample, n)
    sketch = matrix @ rng.standard_normal((n, width))
    for _ in range(power_iterations):
        sketch = matrix @ (matrix.T @ sketch)
    q, _ = np.linalg.qr(sketch)
    small = q.T @ matrix.toarray() if sparse.issparse(matrix) and n <= 20000 else q.T @ matrix
    small = np.asarray(small)
    u_small, s, _ = np.linalg.svd(small, full_matrices=False)
    u = q @ u_small[:, :k]
    return u[:, :k], s[:k]


class CorpusEmbeddings:
    """PPMI+SVD embeddings over a tokenised corpus, aligned to a vocabulary."""

    def __init__(self, vocab: Vocabulary, dim: int, window: int = 4, seed: int = 0):
        self.vocab = vocab
        self.dim = dim
        self.window = window
        self.seed = seed
        self._matrix: np.ndarray | None = None

    def fit(self, corpus: Sequence[List[str]]) -> "CorpusEmbeddings":
        """Build embeddings from token lists (sentences/attribute values)."""
        n = len(self.vocab)
        rows: List[int] = []
        cols: List[int] = []
        for tokens in corpus:
            ids = self.vocab.encode(tokens)
            for i, center in enumerate(ids):
                lo = max(0, i - self.window)
                hi = min(len(ids), i + self.window + 1)
                for j in range(lo, hi):
                    if j != i:
                        rows.append(center)
                        cols.append(ids[j])
        if not rows:
            raise ValueError("empty corpus")
        data = np.ones(len(rows))
        counts = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
        counts = counts + counts.T  # symmetrise

        total = counts.sum()
        row_sums = np.asarray(counts.sum(axis=1)).ravel()
        coo = counts.tocoo()
        # PPMI: max(0, log(p(w,c) / (p(w) p(c))))
        with np.errstate(divide="ignore"):
            pmi = np.log((coo.data * total) /
                         (row_sums[coo.row] * row_sums[coo.col] + 1e-12) + 1e-12)
        pmi = np.maximum(pmi, 0.0)
        ppmi = sparse.csr_matrix((pmi, (coo.row, coo.col)), shape=(n, n))

        k = min(self.dim, max(n - 2, 1))
        u, s = _randomized_svd(ppmi, k, seed=self.seed)
        # Canonical sign: largest-magnitude entry of each component positive,
        # so embeddings are deterministic across runs and platforms.
        signs = np.sign(u[np.abs(u).argmax(axis=0), np.arange(k)])
        signs[signs == 0] = 1.0
        u = u * signs[None, :]
        vectors = u * np.sqrt(np.maximum(s, 0.0))[None, :]
        if k < self.dim:  # pad if vocabulary is tiny
            vectors = np.hstack([vectors, np.zeros((n, self.dim - k))])
        # Scale to the magnitude transformer embeddings expect.
        norm = np.abs(vectors).max() or 1.0
        self._matrix = (vectors / norm * 0.5).astype(np.float32)
        return self

    @property
    def matrix(self) -> np.ndarray:
        if self._matrix is None:
            raise RuntimeError("fit() must be called first")
        return self._matrix

    def vector(self, token: str) -> np.ndarray:
        return self.matrix[self.vocab.token_to_id(token)]

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two tokens' embeddings."""
        va, vb = self.vector(a), self.vector(b)
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        return float(va @ vb / denom) if denom else 0.0

    def nearest(self, token: str, k: int = 5) -> List[str]:
        """k most similar in-vocabulary tokens (excluding the query)."""
        v = self.vector(token)
        norms = np.linalg.norm(self.matrix, axis=1) * (np.linalg.norm(v) or 1.0)
        scores = self.matrix @ v / np.maximum(norms, 1e-9)
        order = np.argsort(-scores)
        out: List[str] = []
        for idx in order:
            candidate = self.vocab.id_to_token(int(idx))
            if candidate != token and not candidate.startswith("["):
                out.append(candidate)
            if len(out) >= k:
                break
        return out
