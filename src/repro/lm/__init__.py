"""Simulated pre-trained language models.

The paper fine-tunes HuggingFace checkpoints (DistilBERT, RoBERTa,
RoBERTa-Large).  Offline we simulate "pre-training" in two steps:

1. :class:`CorpusEmbeddings` — count-based PPMI+SVD word vectors over the
   benchmark corpus provide semantically meaningful initial embeddings
   (the role of the pre-trained embedding matrix).
2. :func:`mlm_warmup` — an optional short masked-language-model warm-up of
   the transformer encoder on the same corpus.

:func:`load_language_model` mirrors the HF ``from_pretrained`` entry point
with a registry of three sizes matching the paper's LM sweep (Table 3/8).
"""

from repro.lm.embeddings import CorpusEmbeddings
from repro.lm.registry import (
    LANGUAGE_MODELS,
    LanguageModelSpec,
    PretrainedLM,
    load_language_model,
)
from repro.lm.pretrain import mlm_warmup

__all__ = [
    "CorpusEmbeddings",
    "LANGUAGE_MODELS",
    "LanguageModelSpec",
    "PretrainedLM",
    "load_language_model",
    "mlm_warmup",
]
