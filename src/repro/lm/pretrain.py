"""Masked-language-model warm-up for the simulated checkpoints.

A short MLM phase teaches the encoder to use context — the property the
paper's contextual-embedding component depends on.  It is optional (the
PPMI+SVD initialisation already carries distributional semantics) and is
used by the extension experiments and tests.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.autograd import functional as F
from repro.autograd.optim import Adam
from repro.lm.registry import PretrainedLM
from repro.nn import Linear


def mlm_warmup(lm: PretrainedLM, corpus: Sequence[List[str]], steps: int = 50,
               batch_size: int = 16, mask_prob: float = 0.15,
               lr: float = 1e-3, seed: int = 0) -> List[float]:
    """Run ``steps`` of masked-token prediction; returns the loss curve.

    15% of tokens are replaced by [UNK] (standing in for [MASK]) and the
    encoder must recover their identities through a tied-embedding softmax.
    """
    rng = np.random.default_rng(seed)
    vocab = lm.vocab
    encoded = [vocab.encode(tokens) for tokens in corpus if len(tokens) >= 2]
    if not encoded:
        raise ValueError("corpus has no usable sequences")
    max_len = max(min(max(len(e) for e in encoded), 32), 4)

    head = Linear(lm.dim, len(vocab), rng=rng)
    optimizer = Adam(lm.parameters() + head.parameters(), lr=lr)
    losses: List[float] = []
    lm.train()
    for _ in range(steps):
        batch_idx = rng.integers(0, len(encoded), size=batch_size)
        ids = np.full((batch_size, max_len), vocab.pad_id, dtype=np.int64)
        mask = np.zeros((batch_size, max_len), dtype=bool)
        targets = np.full((batch_size, max_len), -1, dtype=np.int64)
        for row, idx in enumerate(batch_idx):
            seq = encoded[int(idx)][:max_len]
            ids[row, :len(seq)] = seq
            mask[row, :len(seq)] = True
            for pos in range(len(seq)):
                if rng.random() < mask_prob:
                    targets[row, pos] = ids[row, pos]
                    ids[row, pos] = vocab.unk_id
        if (targets >= 0).sum() == 0:
            continue
        hidden = lm.encode(ids, pad_mask=mask)
        logits = head(hidden)
        rows, cols = np.nonzero(targets >= 0)
        picked_logits = logits[rows, cols]
        loss = F.cross_entropy(picked_logits, targets[rows, cols])
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    lm.eval()
    return losses
