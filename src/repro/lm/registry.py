"""Registry of simulated pre-trained language models (paper Table 3/8 sweep).

Three sizes mirror the paper's DistilBERT / RoBERTa / RoBERTa-Large
comparison: the same architecture at increasing depth and width.  Widths are
expressed as multipliers over the active :class:`~repro.config.Scale`'s
``hidden_dim`` so that the relative ordering (Large > Base > Distil) is
preserved at any experiment scale.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.autograd import Tensor, functional as F
from repro.config import Scale, get_scale
from repro.lm.embeddings import CorpusEmbeddings
from repro.nn import Embedding, Module, TransformerEncoder
from repro.text.vocab import Vocabulary


@dataclasses.dataclass(frozen=True)
class LanguageModelSpec:
    """Architecture recipe for one simulated checkpoint."""

    name: str
    paper_name: str
    width_multiplier: float
    extra_layers: int

    def dim(self, scale: Scale) -> int:
        heads = scale.num_heads
        raw = int(scale.hidden_dim * self.width_multiplier)
        return max((raw // heads) * heads, heads)  # divisible by head count

    def layers(self, scale: Scale) -> int:
        return max(scale.num_layers + self.extra_layers, 1)


LANGUAGE_MODELS: Dict[str, LanguageModelSpec] = {
    "distilbert": LanguageModelSpec("distilbert", "DistilBERT", 0.75, -1),
    "bert": LanguageModelSpec("bert", "BERT", 1.0, 0),
    "roberta": LanguageModelSpec("roberta", "RoBERTa", 1.0, 0),
    "xlnet": LanguageModelSpec("xlnet", "XLNet", 1.0, 0),
    "roberta-large": LanguageModelSpec("roberta-large", "RoBERTa-Large", 1.5, 1),
}

# The three sizes used in the Table 3 / Table 8 sweeps.
LM_SWEEP = ("distilbert", "roberta", "roberta-large")


class PretrainedLM(Module):
    """A transformer encoder with a corpus-pretrained embedding table.

    Plays the role of the HuggingFace checkpoint: ``encode`` maps padded id
    matrices to contextual vectors; ``embed`` exposes raw (non-contextual)
    word embeddings; both are differentiable so fine-tuning updates the
    embeddings exactly as the paper's training process does (Section 5.3).
    """

    def __init__(self, spec: LanguageModelSpec, vocab: Vocabulary,
                 embeddings: Optional[CorpusEmbeddings], scale: Scale,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(scale.seed)
        self.spec = spec
        self.vocab = vocab
        self.dim = spec.dim(scale)
        self.embedding = Embedding(len(vocab), self.dim, rng=rng)
        if embeddings is not None:
            self.embedding.load_pretrained(embeddings.matrix)
        self.encoder = TransformerEncoder(
            dim=self.dim,
            num_layers=spec.layers(scale),
            num_heads=scale.num_heads,
            dropout=0.1,
            max_len=max(scale.max_tokens * 4, 128),
            rng=rng,
        )

    def embed(self, ids: np.ndarray) -> Tensor:
        """Raw word embeddings (the paper's V^t)."""
        return self.embedding(ids)

    def encode(self, ids: np.ndarray, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        """Contextual embeddings for padded id matrices (batch, seq)."""
        return self.encoder(self.embed(ids), pad_mask=pad_mask)

    def encode_cls(self, ids: np.ndarray, pad_mask: Optional[np.ndarray] = None) -> Tensor:
        """[CLS] (position 0) summary vector per sequence."""
        return self.encoder.cls_output(self.embed(ids), pad_mask=pad_mask)


def load_language_model(name: str, vocab: Vocabulary,
                        corpus: Optional[list] = None,
                        scale: Optional[Scale] = None,
                        rng: Optional[np.random.Generator] = None) -> PretrainedLM:
    """Build a simulated checkpoint, pre-training embeddings on ``corpus``.

    Mirrors ``AutoModel.from_pretrained(name)``: unknown names raise with the
    list of available checkpoints.
    """
    if name not in LANGUAGE_MODELS:
        raise KeyError(f"unknown language model {name!r}; available: {sorted(LANGUAGE_MODELS)}")
    scale = scale or get_scale()
    spec = LANGUAGE_MODELS[name]
    embeddings = None
    if corpus:
        embeddings = CorpusEmbeddings(vocab, dim=spec.dim(scale), seed=scale.seed).fit(corpus)
    return PretrainedLM(spec, vocab, embeddings, scale, rng=rng)
