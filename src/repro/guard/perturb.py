"""Adversarial record perturbations for the corruption benchmark.

Generators layered on :mod:`repro.data.dirty` (the paper's attribute-swap
protocol) that mangle entities the ways real-world feeds do: character
typos, nulled attributes, truncation, and outright encoding garbage.  All
randomness flows through an injected ``numpy.random.Generator`` (R001), so
a corruption curve is a pure function of its seed.

``corrupt_pairs(pairs, rate, rng)`` is the benchmark entry point: each
entity is independently perturbed with probability ``rate`` by a kind
drawn uniformly from ``kinds``.  Note ``"garbage"`` produces values the
firewall *quarantines* (control bytes), while the other kinds produce
valid-but-degraded records that flow through to the matcher — the
benchmark separates the two effects (quarantine rate vs F1 drop).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.data.dirty import dirty_entity
from repro.data.schema import Entity, EntityPair
from repro.text.vocab import NAN_TOKEN

#: Perturbation kinds, in benchmark order.
KINDS: Tuple[str, ...] = ("typo", "null", "swap", "truncate", "garbage")

_TYPO_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


def typo_value(value: str, rng: np.random.Generator,
               edits: int = 2) -> str:
    """Apply character-level edits (delete / replace / transpose)."""
    chars = list(value)
    for _ in range(edits):
        if not chars:
            break
        pos = int(rng.integers(0, len(chars)))
        op = int(rng.integers(0, 3))
        if op == 0:
            del chars[pos]
        elif op == 1:
            chars[pos] = _TYPO_ALPHABET[int(rng.integers(0, len(_TYPO_ALPHABET)))]
        elif pos + 1 < len(chars):
            chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
    return "".join(chars)


def _pick_attr(entity: Entity, rng: np.random.Generator) -> int:
    """Index of a random non-null attribute, or -1 if none exist."""
    candidates = [i for i, (_, v) in enumerate(entity.attributes)
                  if v != NAN_TOKEN]
    if not candidates:
        return -1
    return candidates[int(rng.integers(0, len(candidates)))]


def perturb_entity(entity: Entity, kind: str,
                   rng: np.random.Generator) -> Entity:
    """Apply one perturbation ``kind`` to ``entity`` (pure, returns a copy)."""
    if kind == "swap":
        return dirty_entity(entity, rng, injection_prob=1.0)
    index = _pick_attr(entity, rng)
    if index < 0:
        return entity
    items = [list(kv) for kv in entity.attributes]
    key, value = items[index]
    if kind == "typo":
        items[index][1] = typo_value(value, rng) or NAN_TOKEN
    elif kind == "null":
        items[index][1] = NAN_TOKEN
    elif kind == "truncate":
        keep = int(rng.integers(0, max(1, len(value) // 2)))
        items[index][1] = value[:keep] if keep else NAN_TOKEN
    elif kind == "garbage":
        cut = int(rng.integers(0, len(value) + 1))
        junk = chr(int(rng.integers(0x00, 0x09)))
        items[index][1] = value[:cut] + junk + value[cut:]
    else:
        raise ValueError(f"unknown perturbation kind {kind!r}; "
                         f"choose from {KINDS}")
    return entity.replace_attributes([tuple(kv) for kv in items])


def corrupt_pairs(pairs: Sequence[EntityPair], rate: float,
                  rng: np.random.Generator,
                  kinds: Sequence[str] = KINDS) -> List[EntityPair]:
    """Independently perturb each entity with probability ``rate``."""
    if not kinds:
        raise ValueError("need at least one perturbation kind")
    out = []
    for pair in pairs:
        sides = []
        for entity in (pair.left, pair.right):
            if rng.random() < rate:
                kind = kinds[int(rng.integers(0, len(kinds)))]
                entity = perturb_entity(entity, kind, rng)
            sides.append(entity)
        out.append(EntityPair(left=sides[0], right=sides[1],
                              label=pair.label))
    return out
