"""Online drift detection against training-time baselines.

A :class:`DriftBaseline` freezes what "normal" traffic looks like at fit
time: the LM vocabulary's OOV-token rate, per-attribute null rates, the
value-length distribution, and (optionally) the score distribution on the
validation split.  A :class:`DriftMonitor` then watches serving traffic in
tumbling windows and compares each full window to the baseline:

* **OOV rate** — fraction of tokens that miss the vocabulary; flagged when
  it exceeds the baseline rate by more than an absolute margin.
* **Null rate** — per-attribute fraction of ``nan`` values; flagged on a
  margin exceedance for any attribute.
* **Value length** — two-sample Kolmogorov–Smirnov test of the window's
  value-length distribution against the baseline sample.
* **Score shift** — KS *and* Population Stability Index of served tier-1
  scores against the baseline score sample.

The KS decision uses the asymptotic two-sample critical value
``c(alpha) * sqrt((n + m) / (n * m))`` with ``c(alpha) =
sqrt(-ln(alpha / 2) / 2)`` — the same large-sample rejection rule
``scipy.stats.ks_2samp`` applies — computed directly in numpy so the
monitor works (and tests behave identically) whether or not scipy is
importable.  PSI uses baseline-quantile bins with the conventional 0.25
alert threshold.

Sustained drift — ``sustain`` consecutive flagged windows — sets
:attr:`DriftMonitor.forcing`, which the serving layer can use to force the
degradation cascade to tier 2 (reason ``"drift"``).  A clean window clears
it.  Thresholds default to deliberately conservative values so a clean
soak raises zero flags while every seeded-shift scenario trips within one
window.

Window evaluation is instrumented as fault site ``guard.drift``:
``transient`` faults are absorbed by retry-with-backoff, and ``poison``
garbles the computed window statistics, which the monitor detects as
non-finite and recomputes through the same retry path.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.schema import EntityPair, PairDataset
from repro.reliability import COUNTERS, RetryPolicy, fault_point, retry_with_backoff
from repro.reliability.locks import named_lock
from repro.text.tokenizer import tokenize
from repro.text.vocab import NAN_TOKEN, Vocabulary

#: Cap on the baseline length/score samples (keeps KS evaluation O(window)).
_BASELINE_SAMPLE_CAP = 4096


def ks_statistic(sample: np.ndarray, baseline: np.ndarray) -> float:
    """Two-sample KS ``D`` statistic (max ECDF distance), pure numpy."""
    sample = np.sort(np.asarray(sample, dtype=np.float64))
    baseline = np.sort(np.asarray(baseline, dtype=np.float64))
    if sample.size == 0 or baseline.size == 0:
        return 0.0
    grid = np.concatenate([sample, baseline])
    cdf_s = np.searchsorted(sample, grid, side="right") / sample.size
    cdf_b = np.searchsorted(baseline, grid, side="right") / baseline.size
    return float(np.max(np.abs(cdf_s - cdf_b)))


def ks_critical(n: int, m: int, alpha: float) -> float:
    """Asymptotic two-sample KS rejection threshold at level ``alpha``."""
    if n == 0 or m == 0:
        return float("inf")
    c_alpha = math.sqrt(-math.log(alpha / 2.0) / 2.0)
    return c_alpha * math.sqrt((n + m) / (n * m))


def psi(sample: np.ndarray, baseline: np.ndarray, bins: int = 10,
        epsilon: float = 1e-4) -> float:
    """Population Stability Index of ``sample`` against ``baseline``.

    Bin edges are baseline quantiles, so each baseline bin holds ~1/bins of
    the mass; ``epsilon`` floors empty bins to keep the log finite.
    """
    sample = np.asarray(sample, dtype=np.float64)
    baseline = np.asarray(baseline, dtype=np.float64)
    if sample.size == 0 or baseline.size == 0:
        return 0.0
    edges = np.quantile(baseline, np.linspace(0.0, 1.0, bins + 1))
    edges = np.unique(edges)
    if edges.size < 2:
        return 0.0
    edges[0], edges[-1] = -np.inf, np.inf
    expected = np.histogram(baseline, bins=edges)[0] / baseline.size
    actual = np.histogram(sample, bins=edges)[0] / sample.size
    expected = np.clip(expected, epsilon, None)
    actual = np.clip(actual, epsilon, None)
    return float(np.sum((actual - expected) * np.log(actual / expected)))


@dataclasses.dataclass(frozen=True)
class DriftThresholds:
    """Window sizes and alert bounds for :class:`DriftMonitor`."""

    #: Entities (input monitors) / scores (score monitor) per window.
    window: int = 128
    #: KS significance level (small: a clean soak must raise zero flags).
    ks_alpha: float = 1e-3
    #: PSI alert threshold (0.25 is the conventional "significant shift").
    psi_threshold: float = 0.25
    #: Minimum scores in a window before PSI applies.  PSI has no
    #: sample-size correction, so below ~dozens of samples per bin it is
    #: sampling noise; small windows rely on the KS test alone (whose
    #: critical value does shrink with ``n``).
    psi_min_count: int = 64
    #: Absolute OOV-rate increase over baseline that counts as drift.
    oov_margin: float = 0.15
    #: Absolute per-attribute null-rate increase that counts as drift.
    null_margin: float = 0.20
    #: Consecutive flagged windows before :attr:`DriftMonitor.forcing` trips.
    sustain: int = 2


@dataclasses.dataclass(frozen=True)
class DriftBaseline:
    """What fit-time traffic looked like; frozen, compared against forever."""

    #: In-vocabulary token strings (from the LM vocab at fit time).
    known_tokens: frozenset
    #: Fraction of training tokens outside ``known_tokens``.
    oov_rate: float
    #: Per-attribute fraction of ``nan`` values at fit time.
    null_rates: Tuple[Tuple[str, float], ...]
    #: Sample of non-null value lengths (characters).
    length_sample: Tuple[float, ...]
    #: Sample of scores on the validation split (empty = score drift off).
    score_sample: Tuple[float, ...] = ()

    @classmethod
    def from_dataset(cls, dataset: PairDataset,
                     vocab: Optional[Vocabulary] = None,
                     scores: Optional[Sequence[float]] = None) -> "DriftBaseline":
        """Freeze a baseline from every pair of ``dataset``.

        All splits contribute (the whole benchmark dataset is available at
        fit time and drawn from one distribution — using only train+valid
        would mis-flag clean test traffic whose ids/numbers are unseen).
        ``vocab`` comes from the trained matcher's encoder; without one the
        OOV monitor is calibrated against a vocabulary built from the same
        pairs (rate ~0).  ``scores`` are the matcher's validation-split
        scores; omit to disable the score-shift monitor.
        """
        entities = [e for p in dataset.pairs for e in (p.left, p.right)]
        tokens: List[str] = []
        lengths: List[float] = []
        null_counts: Dict[str, int] = {}
        totals: Dict[str, int] = {}
        for entity in entities:
            for key, value in entity.attributes:
                totals[key] = totals.get(key, 0) + 1
                if value == NAN_TOKEN:
                    null_counts[key] = null_counts.get(key, 0) + 1
                else:
                    lengths.append(float(len(value)))
                    tokens.extend(tokenize(value))
        if vocab is not None:
            known = frozenset(t for t in sorted(set(tokens)) if t in vocab)
        else:
            known = frozenset(tokens)
        oov = (sum(1 for t in tokens if t not in known) / len(tokens)
               if tokens else 0.0)
        null_rates = tuple(sorted(
            (key, null_counts.get(key, 0) / total)
            for key, total in totals.items()))
        return cls(
            known_tokens=known,
            oov_rate=float(oov),
            null_rates=null_rates,
            length_sample=tuple(lengths[:_BASELINE_SAMPLE_CAP]),
            score_sample=tuple(float(s) for s in
                               (scores or ())[:_BASELINE_SAMPLE_CAP]),
        )

    @property
    def null_rate_map(self) -> Dict[str, float]:
        return dict(self.null_rates)


class DriftMonitor:
    """Tumbling-window drift monitor over serving traffic.

    Thread-safe: the serving worker pool calls :meth:`observe_pairs` and
    :meth:`observe_scores` concurrently; one lock guards the window
    buffers and flag state.
    """

    def __init__(self, baseline: DriftBaseline,
                 thresholds: DriftThresholds = DriftThresholds(),
                 retry_policy: RetryPolicy = RetryPolicy()):
        self.baseline = baseline
        self.thresholds = thresholds
        self.retry_policy = retry_policy
        self._lock = named_lock("guard.drift")
        # Input-window buffers (entities).
        self._entities = 0
        self._oov = 0
        self._tokens = 0
        self._null_counts: Dict[str, int] = {}
        self._attr_totals: Dict[str, int] = {}
        self._lengths: List[float] = []
        # Score-window buffer.
        self._scores: List[float] = []
        # Flag state.  Windows are sequenced at *roll* time (the moment a
        # full buffer is snapshotted and reset, under the lock) and their
        # results applied strictly in that order: two window evaluations
        # can overlap, and the KS/PSI math runs outside the lock, so the
        # slower evaluation may finish *after* a window rolled later.
        # Applying results in completion order would let a stale clean
        # window clear sustain/forcing state a newer flagged window set.
        self.windows_evaluated = 0
        self.flags: List[Tuple[int, Tuple[str, ...]]] = []
        self._consecutive = 0
        self._forcing = False
        self._windows_rolled = 0          # next roll sequence number
        self._next_window = 0             # next sequence to apply
        self._pending_windows: Dict[int, Tuple[str, ...]] = {}
        self._baseline_lengths = np.asarray(baseline.length_sample,
                                            dtype=np.float64)
        self._baseline_scores = np.asarray(baseline.score_sample,
                                           dtype=np.float64)

    # ------------------------------------------------------------------
    @property
    def forcing(self) -> bool:
        """True while sustained drift should force the cascade to tier 2."""
        with self._lock:
            return self._forcing

    @property
    def flag_count(self) -> int:
        with self._lock:
            return len(self.flags)

    def flag_reasons(self) -> Tuple[str, ...]:
        """All distinct reasons across flagged windows, sorted."""
        with self._lock:
            return tuple(sorted({r for _, reasons in self.flags
                                 for r in reasons}))

    # ------------------------------------------------------------------
    def observe_pairs(self, pairs: Sequence[EntityPair]) -> None:
        """Feed admitted request pairs into the input-drift window."""
        for pair in pairs:
            for entity in (pair.left, pair.right):
                self._observe_entity(entity)

    def _observe_entity(self, entity) -> None:
        with self._lock:
            self._entities += 1
            for key, value in entity.attributes:
                self._attr_totals[key] = self._attr_totals.get(key, 0) + 1
                if value == NAN_TOKEN:
                    self._null_counts[key] = self._null_counts.get(key, 0) + 1
                else:
                    self._lengths.append(float(len(value)))
                    for token in tokenize(value):
                        self._tokens += 1
                        if token not in self.baseline.known_tokens:
                            self._oov += 1
            full = self._entities >= self.thresholds.window
        if full:
            self._evaluate_input_window()

    def observe_scores(self, scores: Sequence[float]) -> None:
        """Feed served tier-1 scores into the score-drift window."""
        if self._baseline_scores.size == 0:
            return
        with self._lock:
            self._scores.extend(float(s) for s in scores)
            full = len(self._scores) >= self.thresholds.window
        if full:
            self._evaluate_score_window()

    # ------------------------------------------------------------------
    def _evaluate_input_window(self) -> None:
        with self._lock:
            if self._entities < self.thresholds.window:
                return  # another thread already evaluated this window
            oov, tokens = self._oov, self._tokens
            nulls = dict(self._null_counts)
            totals = dict(self._attr_totals)
            lengths = np.asarray(self._lengths, dtype=np.float64)
            self._entities = self._oov = self._tokens = 0
            self._null_counts, self._attr_totals = {}, {}
            self._lengths = []
            seq = self._windows_rolled
            self._windows_rolled += 1

        def compute() -> Dict[str, float]:
            stats = {"oov_rate": oov / tokens if tokens else 0.0}
            base_nulls = self.baseline.null_rate_map
            worst = 0.0
            for key, total in totals.items():
                rate = nulls.get(key, 0) / total
                worst = max(worst, rate - base_nulls.get(key, 0.0))
            stats["null_excess"] = worst
            stats["length_ks"] = ks_statistic(lengths, self._baseline_lengths)
            stats["length_ks_critical"] = ks_critical(
                lengths.size, self._baseline_lengths.size,
                self.thresholds.ks_alpha)
            return stats

        stats = self._checked_stats(compute)
        reasons = []
        if stats["oov_rate"] > self.baseline.oov_rate + self.thresholds.oov_margin:
            reasons.append("oov_rate")
        if stats["null_excess"] > self.thresholds.null_margin:
            reasons.append("null_rate")
        if stats["length_ks"] > stats["length_ks_critical"]:
            reasons.append("value_length")
        self._record_window(seq, tuple(reasons))

    def _evaluate_score_window(self) -> None:
        with self._lock:
            if len(self._scores) < self.thresholds.window:
                return
            scores = np.asarray(self._scores, dtype=np.float64)
            self._scores = []
            seq = self._windows_rolled
            self._windows_rolled += 1

        def compute() -> Dict[str, float]:
            return {
                "score_ks": ks_statistic(scores, self._baseline_scores),
                "score_ks_critical": ks_critical(
                    scores.size, self._baseline_scores.size,
                    self.thresholds.ks_alpha),
                "score_psi": psi(scores, self._baseline_scores),
            }

        stats = self._checked_stats(compute)
        psi_applies = scores.size >= self.thresholds.psi_min_count
        reasons = []
        if (stats["score_ks"] > stats["score_ks_critical"]
                or (psi_applies
                    and stats["score_psi"] > self.thresholds.psi_threshold)):
            reasons.append("score_shift")
        self._record_window(seq, tuple(reasons))

    def _checked_stats(self, compute) -> Dict[str, float]:
        """Run ``compute`` under the ``guard.drift`` fault site.

        ``transient`` faults retry; ``poison`` garbles the stats, which the
        finiteness check rejects back into the same retry path.
        """
        def attempt() -> Dict[str, float]:
            kind = fault_point("guard.drift")
            stats = compute()
            if kind == "poison":
                stats = {key: float("nan") for key in stats}
            # NaN (not inf) is the garbled-stats signature: an empty window
            # legitimately yields an infinite KS critical value ("cannot
            # reject"), which must pass through, not retry.
            if any(math.isnan(v) for v in stats.values()):
                raise OSError("garbled drift statistics; recomputing")
            return stats
        return retry_with_backoff(attempt, policy=self.retry_policy,
                                  description="drift window evaluation")

    def _record_window(self, seq: int, reasons: Tuple[str, ...]) -> None:
        """Apply a window's result in roll order, buffering early arrivals."""
        flagged = 0
        with self._lock:
            self._pending_windows[seq] = reasons
            while self._next_window in self._pending_windows:
                applied = self._pending_windows.pop(self._next_window)
                self._next_window += 1
                self.windows_evaluated += 1
                if applied:
                    flagged += 1
                    self.flags.append((self.windows_evaluated, applied))
                    self._consecutive += 1
                    if self._consecutive >= self.thresholds.sustain:
                        self._forcing = True
                else:
                    self._consecutive = 0
                    self._forcing = False
        if flagged:
            COUNTERS.increment("drift_flags", flagged)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "windows_rolled": self._windows_rolled,
                "windows_evaluated": self.windows_evaluated,
                "flagged_windows": len(self.flags),
                "forcing": self._forcing,
                "pending_entities": self._entities,
                "pending_scores": len(self._scores),
            }
