"""Quarantine store: where invalid records go instead of crashing a run.

Every record the firewall rejects becomes a :class:`QuarantinedRecord`
carrying its raw values, its provenance (source + row), and the typed
reason it failed, so nothing is silently dropped — the conservation
invariant ``accepted + quarantined == offered`` is checked by
:class:`~repro.guard.firewall.FirewallStats`.

The store is an in-memory list with optional JSONL persistence (one record
per line, append-only on ``add``), which is what the ``repro quarantine``
CLI reads back for inspection and ``--replay``.

Downstream consumers that retain state keyed on admitted records — the
incremental cluster store in :mod:`repro.resolve` — subscribe to the
store (:meth:`QuarantineStore.subscribe`) to receive typed
:class:`RetractionEvent`\\ s when a record is confirmed bad *after*
admission (a replay that still fails validation): the record must be
un-merged, not just skipped going forward.
"""

from __future__ import annotations

import dataclasses
import json
import os
from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.reliability.locks import named_lock


@dataclasses.dataclass(frozen=True)
class RetractionEvent:
    """A record confirmed bad after it may already have been consumed.

    Emitted through :meth:`QuarantineStore.emit_retraction` (the firewall
    fires one per replayed record that *still* fails validation); carries
    enough provenance for a consumer to un-merge the record and audit why.
    """

    uid: str
    source: str
    row: int
    reason: str
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class QuarantinedRecord:
    """One rejected record: raw payload + provenance + typed reason."""

    uid: str
    values: Tuple[Tuple[str, str], ...]
    source: str
    row: int
    reason: str
    detail: str = ""

    @property
    def values_dict(self) -> Dict[str, str]:
        return dict(self.values)

    def to_json(self) -> str:
        return json.dumps({
            "uid": self.uid,
            "values": dict(self.values),
            "source": self.source,
            "row": self.row,
            "reason": self.reason,
            "detail": self.detail,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "QuarantinedRecord":
        raw = json.loads(line)
        return cls(
            uid=str(raw.get("uid", "")),
            values=tuple((str(k), v) for k, v in raw.get("values", {}).items()),
            source=str(raw.get("source", "")),
            row=int(raw.get("row", 0)),
            reason=str(raw.get("reason", "")),
            detail=str(raw.get("detail", "")),
        )


class QuarantineStore:
    """Thread-safe list of quarantined records, optionally JSONL-backed.

    ``path=None`` keeps the store purely in memory (the default for tests
    and serving); with a path every ``add`` appends one JSON line so a
    crashed ingestion run loses nothing.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._records: List[QuarantinedRecord] = []
        self._listeners: List[Callable[[RetractionEvent], None]] = []
        self._lock = named_lock("guard.quarantine")
        # File appends/rewrites serialize behind their own lock so disk IO
        # never happens under the record-list lock readers contend on
        # (R009: no blocking call under a hot lock).
        self._io_lock = named_lock("guard.quarantine.io")

    def subscribe(self,
                  listener: Callable[[RetractionEvent], None]) -> None:
        """Register a retraction listener (called outside store locks)."""
        with self._lock:
            self._listeners.append(listener)

    def emit_retraction(self, event: RetractionEvent) -> None:
        """Deliver one typed retraction to every subscribed listener."""
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            listener(event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def records(self) -> Tuple[QuarantinedRecord, ...]:
        with self._lock:
            return tuple(self._records)

    def by_reason(self) -> Dict[str, int]:
        """Histogram of quarantine reasons (for stats / CLI output)."""
        with self._lock:
            return dict(Counter(r.reason for r in self._records))

    def add(self, record: QuarantinedRecord) -> None:
        line = record.to_json()
        with self._lock:
            self._records.append(record)
        if self.path is not None:
            with self._io_lock:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(line + "\n")

    def remove(self, record: QuarantinedRecord) -> None:
        """Drop a record (it was successfully replayed)."""
        with self._lock:
            self._records.remove(record)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def rewrite(self) -> None:
        """Rewrite the JSONL file to match the in-memory state (post-replay)."""
        if self.path is None:
            return
        with self._lock:
            lines = [record.to_json() for record in self._records]
        tmp = self.path + ".tmp"
        with self._io_lock:
            with open(tmp, "w", encoding="utf-8") as fh:
                for line in lines:
                    fh.write(line + "\n")
            os.replace(tmp, self.path)

    @classmethod
    def load(cls, path: str) -> "QuarantineStore":
        """Read a JSONL quarantine file back into a store."""
        store = cls(path=path)
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        store._records.append(QuarantinedRecord.from_json(line))
        return store
