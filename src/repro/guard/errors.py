"""Typed data-quality errors with row provenance.

Every malformed record the firewall sees is described by a *typed reason*
(one of :data:`REASONS`) plus a :class:`RecordProvenance` naming the file
(or stream) and row it came from, so a quarantined record can always be
traced back to its source and replayed after a fix.

Stdlib-only on purpose: this module is imported from ``repro.data.io`` and
must not pull in the rest of the guard package (which imports the data
schema — keeping this module leaf-level avoids the cycle).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

#: Typed quarantine/rejection reasons.  ``DataError.reason`` and
#: ``QuarantinedRecord.reason`` are always one of these strings.
REASON_RAGGED = "ragged_row"          # fewer cells than the header
REASON_OVERWIDE = "overwide_row"      # more cells than the header
REASON_BLANK = "blank_row"            # empty line / all-empty cells
REASON_ENCODING = "encoding_garbage"  # undecodable bytes, NUL, U+FFFD
REASON_BAD_TYPE = "bad_type"          # non-string attribute value
REASON_ARITY = "arity_mismatch"       # attribute set differs from schema
REASON_NULL_EXCESS = "null_excess"    # too many null attributes
REASON_TOO_LONG = "value_too_long"    # value exceeds the length bound
REASON_DUPLICATE_ID = "duplicate_id"  # uid already seen in this source
REASON_MISSING_ID = "missing_id"      # empty / absent uid
REASON_BAD_LABEL = "bad_label"        # pair label not parseable as 0/1
REASON_UNKNOWN_REF = "unknown_reference"  # pair references an unknown uid
REASON_INJECTED = "fault_injected"    # guard.validate corrupt fault fired

REASONS = (
    REASON_RAGGED, REASON_OVERWIDE, REASON_BLANK, REASON_ENCODING,
    REASON_BAD_TYPE, REASON_ARITY, REASON_NULL_EXCESS, REASON_TOO_LONG,
    REASON_DUPLICATE_ID, REASON_MISSING_ID, REASON_BAD_LABEL,
    REASON_UNKNOWN_REF, REASON_INJECTED,
)


@dataclasses.dataclass(frozen=True)
class RecordProvenance:
    """Where a record came from: a source name and a 1-based row index."""

    source: str
    row: int

    def __str__(self) -> str:
        return f"{self.source}:row {self.row}"


class DataError(ValueError):
    """A malformed record, carrying its typed reason and provenance.

    Raised by the hardened loaders when no firewall is active; when a
    :class:`~repro.guard.firewall.DataFirewall` is attached the same
    information is routed to the quarantine store instead of raising.
    """

    def __init__(self, message: str, reason: str,
                 provenance: Optional[RecordProvenance] = None):
        if reason not in REASONS:
            raise ValueError(f"unknown data-error reason {reason!r}")
        where = f" [{provenance}]" if provenance is not None else ""
        super().__init__(f"{message}{where}")
        self.reason = reason
        self.provenance = provenance
