"""Schema-driven record validation and canonicalization.

The validator is the firewall's first stage: every record offered to
ingestion or serving passes through :meth:`RecordValidator.validate` (raw
``uid -> values`` mappings) or :meth:`RecordValidator.validate_entity`
(already-constructed :class:`~repro.data.schema.Entity` objects).  A valid
record comes back canonicalized; an invalid one raises a typed
:class:`~repro.guard.errors.DataError` that the firewall converts into a
quarantine entry.

Canonicalization is deliberately conservative so the firewall is invisible
on clean data (the bitwise-identity acceptance criterion): a value with no
suspicious characters is returned as the *same* string object, repairable
junk (BOM, zero-width characters, stray CR/LF/TAB) is stripped, and real
encoding garbage (NUL and other control bytes, U+FFFD replacement
characters from undecodable input) fails validation instead of being
guessed at.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Set, Tuple

from repro.data.schema import Entity
from repro.guard.errors import (
    REASON_ARITY,
    REASON_BAD_TYPE,
    REASON_DUPLICATE_ID,
    REASON_ENCODING,
    REASON_MISSING_ID,
    REASON_NULL_EXCESS,
    REASON_TOO_LONG,
    DataError,
    RecordProvenance,
)
from repro.text.vocab import NAN_TOKEN

#: Characters canonicalization silently removes: byte-order marks and
#: zero-width code points that survive copy/paste, plus CR (normalized
#: line endings).  TAB/LF inside a cell become single spaces.
_STRIPPED = "\ufeff\u200b\u200c\u200d\u2060"
_SPACED = "\t\n\r"

#: Characters that mark a value as encoding garbage: the C0/C1 control
#: ranges (minus whitespace handled above), DEL, and the U+FFFD
#: replacement character produced when undecodable bytes are read with
#: ``errors="replace"``.
_GARBAGE: Set[str] = {chr(c) for c in range(0x00, 0x20)} - set(_SPACED)
_GARBAGE |= {chr(c) for c in range(0x7F, 0xA0)} | {"\ufffd"}


def canonicalize_value(value: str) -> str:
    """Repair a cell value, or raise ``ValueError`` on encoding garbage.

    Returns ``value`` itself (same object) when nothing needed repair, so
    clean data is bitwise-unaffected by the firewall.
    """
    for ch in value:
        if ch in _GARBAGE:
            raise ValueError(f"encoding garbage {ch!r}")
        if ch in _STRIPPED or ch in _SPACED:
            break
    else:
        return value
    out = []
    for ch in value:
        if ch in _GARBAGE:
            raise ValueError(f"encoding garbage {ch!r}")
        if ch in _STRIPPED:
            continue
        out.append(" " if ch in _SPACED else ch)
    return " ".join("".join(out).split())


@dataclasses.dataclass(frozen=True)
class RecordSchema:
    """Validation bounds for one record source.

    ``attributes=()`` accepts any attribute set (the keys are then fixed by
    the first record the caller sees, not by the schema).
    """

    #: Expected attribute names, in order; empty = accept any.
    attributes: Tuple[str, ...] = ()
    #: Hard per-value length bound (characters).
    max_value_chars: int = 4096
    #: Reject records where more than this fraction of values is null.
    max_null_fraction: float = 1.0
    #: Reject duplicate uids within one validator lifetime.
    require_unique_ids: bool = True

    @classmethod
    def for_dataset(cls, dataset, **overrides) -> "RecordSchema":
        """Schema matching a :class:`PairDataset`'s attribute layout."""
        first = dataset.pairs[0].left if dataset.pairs else None
        attrs = first.keys if first is not None else ()
        return cls(attributes=tuple(attrs), **overrides)


class RecordValidator:
    """Applies a :class:`RecordSchema` to raw rows and entities."""

    def __init__(self, schema: RecordSchema = RecordSchema()):
        self.schema = schema
        self._seen_ids: Set[str] = set()

    def reset(self) -> None:
        """Forget seen uids (call between independent sources)."""
        self._seen_ids.clear()

    # ------------------------------------------------------------------
    def validate(self, uid: object, values: Dict[str, object],
                 provenance: Optional[RecordProvenance] = None,
                 source: str = "") -> Entity:
        """Validate + canonicalize one raw record into an :class:`Entity`."""
        uid = self._check_uid(uid, provenance)
        clean: Dict[str, str] = {}
        for key, value in values.items():
            clean[str(key)] = self._check_value(key, value, provenance)
        self._check_arity(tuple(clean), provenance)
        entity = Entity.from_dict(uid, clean, source=source)
        self._check_nulls(entity, provenance)
        # Register the uid only after every check passed, so a quarantined
        # record can be replayed without tripping the duplicate check.
        if self.schema.require_unique_ids:
            self._seen_ids.add(uid)
        return entity

    def validate_entity(self, entity: Entity,
                        provenance: Optional[RecordProvenance] = None) -> Entity:
        """Validate an existing entity; returns it *unchanged* when clean."""
        uid = self._check_uid(entity.uid, provenance, track=False)
        changed = uid != entity.uid
        attributes = []
        for key, value in entity.attributes:
            clean = self._check_value(key, value, provenance)
            changed = changed or clean is not value
            attributes.append((key, clean if clean != "" else NAN_TOKEN))
        self._check_arity(tuple(k for k, _ in attributes), provenance)
        out = entity if not changed else Entity(
            uid=uid, attributes=tuple(attributes), source=entity.source)
        self._check_nulls(out, provenance)
        return out

    # ------------------------------------------------------------------
    def _check_uid(self, uid: object, provenance: Optional[RecordProvenance],
                   track: bool = True) -> str:
        if not isinstance(uid, str) or not uid.strip():
            raise DataError(f"record has no usable id ({uid!r})",
                            REASON_MISSING_ID, provenance)
        try:
            uid = canonicalize_value(uid)
        except ValueError:
            raise DataError("record id contains encoding garbage",
                            REASON_ENCODING, provenance) from None
        if track and self.schema.require_unique_ids and uid in self._seen_ids:
            raise DataError(f"duplicate record id {uid!r}",
                            REASON_DUPLICATE_ID, provenance)
        return uid

    def _check_value(self, key: object, value: object,
                     provenance: Optional[RecordProvenance]) -> str:
        if value is None:
            return NAN_TOKEN
        if not isinstance(value, str):
            raise DataError(
                f"attribute {key!r} has non-string value of type "
                f"{type(value).__name__}", REASON_BAD_TYPE, provenance)
        if len(value) > self.schema.max_value_chars:
            raise DataError(
                f"attribute {key!r} value of {len(value)} chars exceeds the "
                f"{self.schema.max_value_chars}-char bound",
                REASON_TOO_LONG, provenance)
        try:
            return canonicalize_value(value)
        except ValueError:
            raise DataError(f"attribute {key!r} contains encoding garbage",
                            REASON_ENCODING, provenance) from None

    def _check_arity(self, keys: Tuple[str, ...],
                     provenance: Optional[RecordProvenance]) -> None:
        expected = self.schema.attributes
        if expected and keys != expected:
            raise DataError(
                f"attribute set {list(keys)} does not match the schema "
                f"{list(expected)}", REASON_ARITY, provenance)

    def _check_nulls(self, entity: Entity,
                     provenance: Optional[RecordProvenance]) -> None:
        if self.schema.max_null_fraction >= 1.0 or not entity.attributes:
            return
        nulls = sum(1 for _, v in entity.attributes if v == NAN_TOKEN or not v)
        fraction = nulls / len(entity.attributes)
        if fraction > self.schema.max_null_fraction:
            raise DataError(
                f"{nulls}/{len(entity.attributes)} attributes are null "
                f"(bound {self.schema.max_null_fraction:.0%})",
                REASON_NULL_EXCESS, provenance)
