"""``repro.guard`` — the data-quality firewall.

Spans offline ingestion and online serving:

* :mod:`repro.guard.validate` — schema-driven record validation and
  conservative canonicalization (bitwise-invisible on clean data).
* :mod:`repro.guard.quarantine` — typed, provenance-carrying store for
  rejected records, with JSONL persistence and replay.
* :mod:`repro.guard.firewall` — the admission point tying validator +
  quarantine + drift together under the conservation invariant
  ``accepted + quarantined == offered``.
* :mod:`repro.guard.drift` — tumbling-window drift monitors (OOV rate,
  null rates, value-length KS, score KS/PSI) against fit-time baselines.
* :mod:`repro.guard.perturb` — seeded corruption generators for the
  robustness benchmark (``make bench-robust``).

See ``docs/ROBUSTNESS.md`` for the architecture and contracts.
"""

from repro.guard.drift import (
    DriftBaseline,
    DriftMonitor,
    DriftThresholds,
    ks_critical,
    ks_statistic,
    psi,
)
from repro.guard.errors import (
    REASON_ARITY,
    REASON_BAD_LABEL,
    REASON_BAD_TYPE,
    REASON_BLANK,
    REASON_DUPLICATE_ID,
    REASON_ENCODING,
    REASON_INJECTED,
    REASON_MISSING_ID,
    REASON_NULL_EXCESS,
    REASON_OVERWIDE,
    REASON_RAGGED,
    REASON_TOO_LONG,
    REASON_UNKNOWN_REF,
    REASONS,
    DataError,
    RecordProvenance,
)
from repro.guard.firewall import DataFirewall, FirewallStats, summarize
from repro.guard.perturb import KINDS, corrupt_pairs, perturb_entity, typo_value
from repro.guard.quarantine import (
    QuarantinedRecord,
    QuarantineStore,
    RetractionEvent,
)
from repro.guard.validate import RecordSchema, RecordValidator, canonicalize_value

__all__ = [
    "DataError", "DataFirewall", "DriftBaseline", "DriftMonitor",
    "DriftThresholds", "FirewallStats", "KINDS", "QuarantineStore",
    "QuarantinedRecord", "REASONS", "REASON_ARITY", "REASON_BAD_LABEL",
    "REASON_BAD_TYPE", "REASON_BLANK", "REASON_DUPLICATE_ID",
    "REASON_ENCODING", "REASON_INJECTED", "REASON_MISSING_ID",
    "REASON_NULL_EXCESS", "REASON_OVERWIDE", "REASON_RAGGED",
    "REASON_TOO_LONG", "REASON_UNKNOWN_REF", "RecordProvenance",
    "RetractionEvent",
    "RecordSchema", "RecordValidator", "canonicalize_value", "corrupt_pairs",
    "ks_critical", "ks_statistic", "perturb_entity", "psi", "summarize",
    "typo_value",
]
