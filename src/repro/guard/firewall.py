"""The data-quality firewall: validate, quarantine, conserve.

:class:`DataFirewall` is the single admission point malformed data can
take into the pipeline: loaders offer raw rows via :meth:`DataFirewall.admit`,
the serving layer offers request pairs via :meth:`DataFirewall.admit_pairs`,
and every offered record either comes back as a validated
:class:`~repro.data.schema.Entity` or lands in the quarantine store with a
typed reason — never an unhandled exception, never a silent drop.
:class:`FirewallStats` tracks the conservation invariant
``accepted + quarantined == offered`` that the unit tests, the fuzz smoke,
and the chaos soak all assert.

Validation is instrumented as fault site ``guard.validate``: ``transient``
faults are absorbed by retry-with-backoff (``transient_retries``), and
``corrupt`` faults quarantine the record under the ``fault_injected``
reason — conservation holds even while the firewall itself is failing.

Quarantined records can be replayed after a fix via :meth:`replay`
(surfaced as ``repro quarantine --replay``); each record that now passes
is removed from the store and counted in ``records_replayed``.  Records
that *still* fail are confirmed bad post-admission: the firewall emits a
typed :class:`~repro.guard.quarantine.RetractionEvent` through the
quarantine store so stateful consumers (the incremental cluster store in
:mod:`repro.resolve`) un-merge them, and counts each emission in
``FirewallStats.retracted``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.schema import Entity, EntityPair
from repro.guard.drift import DriftMonitor
from repro.guard.errors import REASON_INJECTED, DataError, RecordProvenance
from repro.guard.quarantine import (
    QuarantinedRecord,
    QuarantineStore,
    RetractionEvent,
)
from repro.guard.validate import RecordSchema, RecordValidator
from repro.reliability import (
    COUNTERS,
    RetryPolicy,
    fault_point,
    retry_with_backoff,
)
from repro.reliability.locks import named_lock


class FirewallStats:
    """Lock-protected offered/accepted/quarantined/replayed tallies.

    ``retracted`` counts typed retraction events emitted for records a
    replay confirmed bad; it is informational (replay offers already
    re-enter the conservation sum as fresh quarantines).
    """

    def __init__(self):
        self._lock = named_lock("guard.firewall.stats")
        self.offered = 0
        self.accepted = 0
        self.quarantined = 0
        self.replayed = 0
        self.retracted = 0

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    @property
    def conserved(self) -> bool:
        """The invariant: every offered record is accepted or quarantined."""
        with self._lock:
            return self.accepted + self.quarantined == self.offered

    def snapshot(self) -> Dict[str, object]:
        """All four tallies plus ``conserved``, from one lock acquisition.

        ``conserved`` is computed from the same read as the numbers it
        describes — a reader that took the :attr:`conserved` property
        separately could pair a stale flag with fresher tallies.
        """
        with self._lock:
            return {
                "offered": self.offered,
                "accepted": self.accepted,
                "quarantined": self.quarantined,
                "replayed": self.replayed,
                "retracted": self.retracted,
                "conserved":
                    self.accepted + self.quarantined == self.offered,
            }


class DataFirewall:
    """Schema validator + quarantine store + optional drift monitor."""

    def __init__(self, schema: RecordSchema = RecordSchema(),
                 store: Optional[QuarantineStore] = None,
                 monitor: Optional[DriftMonitor] = None,
                 retry_policy: RetryPolicy = RetryPolicy()):
        self.validator = RecordValidator(schema)
        self.store = store if store is not None else QuarantineStore()
        self.monitor = monitor
        self.retry_policy = retry_policy
        self.stats = FirewallStats()

    # ------------------------------------------------------------------
    def admit(self, uid: object, values: Dict[str, object],
              provenance: Optional[RecordProvenance] = None,
              source: str = "") -> Optional[Entity]:
        """Offer one raw record; an Entity if accepted, None if quarantined."""
        return self._offer(uid, values, provenance, source,
                           lambda: self.validator.validate(
                               uid, values, provenance, source))

    def admit_entity(self, entity: Entity,
                     provenance: Optional[RecordProvenance] = None
                     ) -> Optional[Entity]:
        """Offer an already-constructed entity (the serving submit path).

        Duplicate-id tracking is off here: the same entity legitimately
        appears in many request pairs.
        """
        return self._offer(entity.uid, dict(entity.attributes), provenance,
                           entity.source,
                           lambda: self.validator.validate_entity(
                               entity, provenance))

    def quarantine_error(self, uid: object, values: Dict[str, object],
                         error: DataError) -> None:
        """Offer a record a *loader* already rejected (ragged row etc.)."""
        self.stats.count("offered")
        self._quarantine(uid, values, error)

    def admit_pairs(self, pairs: Sequence[EntityPair], source: str = ""
                    ) -> Tuple[List[EntityPair], int]:
        """Offer request pairs; returns (accepted pairs, records quarantined).

        A pair survives only if *both* sides pass validation; clean pairs
        come back containing the exact same Entity objects they arrived
        with (bitwise transparency).  Accepted pairs feed the drift
        monitor's input windows.
        """
        accepted: List[EntityPair] = []
        quarantined = 0
        for row, pair in enumerate(pairs, start=1):
            provenance = RecordProvenance(source or "request", row)
            left = self.admit_entity(pair.left, provenance)
            right = self.admit_entity(pair.right, provenance)
            quarantined += (left is None) + (right is None)
            if left is None or right is None:
                continue
            if left is pair.left and right is pair.right:
                accepted.append(pair)
            else:
                accepted.append(EntityPair(left=left, right=right,
                                           label=pair.label))
        if self.monitor is not None and accepted:
            self.monitor.observe_pairs(accepted)
        return accepted, quarantined

    # ------------------------------------------------------------------
    def _offer(self, uid, values, provenance, source, validate):
        self.stats.count("offered")

        def attempt() -> Entity:
            kind = fault_point("guard.validate", source=source)
            if kind == "corrupt":
                raise DataError("injected validation fault", REASON_INJECTED,
                                provenance)
            return validate()

        try:
            entity = retry_with_backoff(attempt, policy=self.retry_policy,
                                        description="firewall validation")
        except DataError as err:
            self._quarantine(uid, values, err)
            return None
        self.stats.count("accepted")
        return entity

    def _quarantine(self, uid, values, error: DataError) -> None:
        provenance = error.provenance or RecordProvenance("", 0)
        self.store.add(QuarantinedRecord(
            uid=str(uid),
            values=tuple((str(k), v if isinstance(v, str) else repr(v))
                         for k, v in dict(values).items()),
            source=provenance.source,
            row=provenance.row,
            reason=error.reason,
            detail=str(error),
        ))
        self.stats.count("quarantined")
        COUNTERS.increment("records_quarantined")

    # ------------------------------------------------------------------
    def replay(self) -> Tuple[List[Entity], int]:
        """Re-offer every quarantined record; (accepted entities, still held).

        Records that now validate are removed from the store and counted in
        ``records_replayed``; the rest stay quarantined (each failed replay
        adds a fresh quarantine entry in the stats, so conservation keeps
        holding: a replay is a new offer).  Each still-failing record is
        additionally *retracted*: a typed
        :class:`~repro.guard.quarantine.RetractionEvent` goes out to the
        store's subscribers (counted in ``FirewallStats.retracted``) so
        downstream state built on the record gets un-merged.
        """
        accepted: List[Entity] = []
        for record in self.store.records:
            self.store.remove(record)
            entity = self.admit(
                record.uid, record.values_dict,
                RecordProvenance(record.source, record.row),
                source=record.source)
            if entity is not None:
                accepted.append(entity)
                self.stats.count("replayed")
                COUNTERS.increment("records_replayed")
            else:
                self.stats.count("retracted")
                self.store.emit_retraction(RetractionEvent(
                    uid=record.uid, source=record.source, row=record.row,
                    reason=record.reason, detail=record.detail))
        self.store.rewrite()
        return accepted, len(self.store)


@dataclasses.dataclass(frozen=True)
class _FirewallSummary:
    """Flat stats view used by ``InferenceService.stats()`` and the CLI."""

    offered: int
    accepted: int
    quarantined: int
    replayed: int
    retracted: int
    conserved: bool
    by_reason: Dict[str, int]


def summarize(firewall: DataFirewall) -> _FirewallSummary:
    # One snapshot supplies both the tallies and their conserved flag, so
    # the summary can never pair a flag with numbers it doesn't describe.
    snap = firewall.stats.snapshot()
    return _FirewallSummary(
        offered=snap["offered"],
        accepted=snap["accepted"],
        quarantined=snap["quarantined"],
        replayed=snap["replayed"],
        retracted=snap["retracted"],
        conserved=snap["conserved"],
        by_reason=firewall.store.by_reason(),
    )
