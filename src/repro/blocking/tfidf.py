"""TF-IDF cosine-similarity retrieval for collective candidate generation.

Section 6.3: "we randomly select one entity from table A and query top-N
similar candidates in table B.  We use the TF-IDF cosine similarity to obtain
the entities' similarity scores ... we set N as 16."
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.blocking.base import Blocker
from repro.data.schema import Entity
from repro.text.tokenizer import tokenize


class TfidfIndex:
    """A TF-IDF vector index over entity texts with cosine top-N queries."""

    def __init__(self, entities: Sequence[Entity]):
        if not entities:
            raise ValueError("cannot index an empty entity list")
        self.entities = list(entities)
        self._vocab: Dict[str, int] = {}
        doc_tokens: List[List[str]] = []
        for entity in self.entities:
            tokens = tokenize(entity.text())
            doc_tokens.append(tokens)
            for token in tokens:
                if token not in self._vocab:
                    self._vocab[token] = len(self._vocab)

        n_docs = len(self.entities)
        n_terms = max(len(self._vocab), 1)
        df = np.zeros(n_terms)
        rows, cols, vals = [], [], []
        for i, tokens in enumerate(doc_tokens):
            counts: Dict[int, int] = {}
            for token in tokens:
                counts[self._vocab[token]] = counts.get(self._vocab[token], 0) + 1
            for term, count in counts.items():
                rows.append(i)
                cols.append(term)
                vals.append(1.0 + math.log(count))
                df[term] += 1
        self._idf = np.log((1 + n_docs) / (1 + df)) + 1.0
        matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(n_docs, n_terms))
        matrix = matrix.multiply(self._idf[None, :]).tocsr()
        norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
        norms[norms == 0] = 1.0
        self._matrix = sparse.diags(1.0 / norms) @ matrix

    def __len__(self) -> int:
        return len(self.entities)

    def vectorize(self, entity: Entity) -> sparse.csr_matrix:
        """TF-IDF vector for a (possibly unseen) entity."""
        counts: Dict[int, int] = {}
        for token in tokenize(entity.text()):
            term = self._vocab.get(token)
            if term is not None:
                counts[term] = counts.get(term, 0) + 1
        if not counts:
            return sparse.csr_matrix((1, self._matrix.shape[1]))
        cols = list(counts)
        vals = [(1.0 + math.log(counts[c])) * self._idf[c] for c in cols]
        vec = sparse.csr_matrix((vals, ([0] * len(cols), cols)), shape=(1, self._matrix.shape[1]))
        norm = math.sqrt(vec.multiply(vec).sum())
        return vec / norm if norm > 0 else vec

    def query(self, entity: Entity, top_n: int = 16,
              exclude_uid: bool = True) -> List[Tuple[int, float]]:
        """Top-N most cosine-similar indexed entities to ``entity``."""
        vec = self.vectorize(entity)
        scores = (self._matrix @ vec.T).toarray().ravel()
        if vec.nnz == 0:
            # All query tokens are out-of-vocabulary: every score is 0.0 and
            # ``argsort`` over the all-equal array is implementation-ordered.
            # Return index order so the all-OOV path is deterministic.
            order = np.arange(len(scores))
        else:
            order = np.argsort(-scores)
        results: List[Tuple[int, float]] = []
        for idx in order:
            idx = int(idx)
            if exclude_uid and self.entities[idx].uid == entity.uid:
                continue
            results.append((idx, float(scores[idx])))
            if len(results) >= top_n:
                break
        return results


class TfidfBlocker(Blocker):
    """:class:`~repro.blocking.base.Blocker` over :class:`TfidfIndex`.

    IDF weights are corpus statistics, so incremental ``add`` re-derives the
    whole index — O(n) per add, correct by construction (both sides of the
    add == rebuild parity contract literally rebuild).  Use the ANN blockers
    in :mod:`repro.blocking.ann` when adds must be cheap.
    """

    name = "tfidf"

    def __init__(self):
        self._records: List[Entity] = []
        self._index: Optional[TfidfIndex] = None

    @property
    def records(self) -> Sequence[Entity]:
        return self._records

    def fit(self, table: Sequence[Entity]) -> "TfidfBlocker":
        self._records = list(table)
        self._index = TfidfIndex(self._records) if self._records else None
        return self

    def add(self, record: Entity) -> int:
        self._records.append(record)
        self._index = TfidfIndex(self._records)
        return len(self._records) - 1

    def candidates(self, record: Entity, k: int = 16) -> List[int]:
        if k <= 0:
            raise ValueError("k must be >= 1")
        if self._index is None:
            return []
        hits = self._index.query(record, top_n=k, exclude_uid=True)
        return sorted(idx for idx, _ in hits)
