"""Approximate-nearest-neighbour blocking: MinHash/LSH and random projection.

The classic blockers in this package score candidates against the *whole*
indexed table (TF-IDF) or touch every colliding token pair (overlap), which
caps datasets at toy size.  The two indexes here generate candidates from
hash-bucket collisions instead, so indexing is streaming (``add`` is O(1)
amortized per record), no all-pairs structure is ever materialized, and a
query touches only the records it collides with:

* :class:`MinHashLSHBlocker` — minhash signatures over token (or character
  n-gram) shingles, banded LSH buckets; collision probability for Jaccard
  similarity ``s`` is the classic ``1 - (1 - s^r)^b`` S-curve
  (:func:`collision_probability`).
* :class:`RandomProjectionBlocker` — signed random hyperplane projection
  (SimHash) over a feature-hashed log-TF token vector, or over any
  caller-supplied embedding (``embed_fn`` — e.g. the frozen-LM record
  embeddings served by :mod:`repro.store`); bit-band buckets, candidates
  ranked by Hamming distance.

Both share the banded-index machinery in :class:`_BandedNNIndex` and the
:class:`~repro.blocking.base.Blocker` contracts: seeded determinism, sorted
duplicate-free emission, uid-based self-pair exclusion, and bitwise
``add == rebuild`` parity (a record's signature row depends only on the
record and the seed, never on the rest of the corpus — which is also why
the projection uses feature hashing rather than corpus IDF weights).

Reliability: every query passes the registered ``blocking.index`` fault
site.  Signature rows carry a per-row checksum; a corrupt row detected
while ranking raises :class:`~repro.reliability.faults.CorruptDataFault`
internally, the index is rebuilt from its retained records
(``COUNTERS.blocking_index_rebuilds``), and the query is re-answered from
the rebuilt index.
"""

from __future__ import annotations

import functools
import hashlib
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocking.base import Blocker
from repro.data.schema import Entity
from repro.perf.cache import get_cache, params_version
from repro.reliability.counters import COUNTERS
from repro.reliability.faults import CorruptDataFault, fault_point
from repro.text.tokenizer import tokenize

_FNV_OFFSET = np.uint64(14695981039346656037)
_FNV_PRIME = np.uint64(1099511628211)
#: Signature value for a record with no shingles (all such records collide).
_EMPTY_SIG = np.uint64((1 << 31) - 1)
#: XOR mask the ``corrupt`` fault kind applies to the signature matrix.
_CORRUPT_MASK = np.uint64(0xA5A5A5A5A5A5A5A5)
#: Records per vectorized indexing chunk.
_CHUNK = 4096


@functools.lru_cache(maxsize=1 << 20)
def token_hash(token: str) -> int:
    """Stable 64-bit hash of a token (blake2b — process-salt-free, R001)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def collision_probability(similarity: float, rows_per_band: int,
                          bands: int) -> float:
    """P(two records share ≥1 LSH bucket) at signature similarity ``s``.

    For MinHash, ``similarity`` is the Jaccard similarity of the shingle
    sets; each band of ``r`` rows matches with probability ``s^r``, so the
    collision probability is ``1 - (1 - s^r)^b``.
    """
    s = min(max(float(similarity), 0.0), 1.0)
    return 1.0 - (1.0 - s ** rows_per_band) ** bands


class _BandedNNIndex(Blocker):
    """Shared banded-signature machinery for the two ANN blockers.

    Subclasses define a fixed-width ``uint64`` signature row per record
    (:meth:`_row_batch`), how rows map to band bucket values
    (:meth:`_band_values`), and how collided rows are ranked against a
    query row (:meth:`_similarity`).  This base owns the growable row
    matrix, the per-row checksums, the bucket table, incremental ``add``,
    and the corrupt-index → rebuild recovery path.
    """

    #: uint64 columns per signature row (set by subclass __init__).
    row_width: int

    def __init__(self, seed: int, bands: int, keep_records: bool = True):
        self.seed = int(seed)
        self.bands = int(bands)
        self.keep_records = keep_records
        self._reset()

    # -- subclass API ---------------------------------------------------
    def _row_batch(self, entities: Sequence[Entity]) -> np.ndarray:
        """(n, row_width) uint64 signature rows; pure per-record function."""
        raise NotImplementedError

    def _band_values(self, rows: np.ndarray) -> np.ndarray:
        """(n, bands) uint64 bucket values for signature rows."""
        raise NotImplementedError

    def _similarity(self, rows: np.ndarray, qrow: np.ndarray) -> np.ndarray:
        """Ranking scores (higher = closer) of ``rows`` against ``qrow``."""
        raise NotImplementedError

    # -- state ----------------------------------------------------------
    def _reset(self) -> None:
        self._rows = np.zeros((0, self.row_width), dtype=np.uint64)
        self._sums = np.zeros(0, dtype=np.uint64)
        self._n = 0
        self._buckets: Dict[Tuple[int, int], List[int]] = {}
        self._uids: List[str] = []
        self._records: Optional[List[Entity]] = [] if self.keep_records else None

    @property
    def records(self) -> Sequence[Entity]:
        if self._records is None:
            raise RuntimeError(
                f"{type(self).__name__} was built with keep_records=False")
        return self._records

    def __len__(self) -> int:
        return self._n

    def _ensure_capacity(self, extra: int) -> None:
        need = self._n + extra
        if need <= len(self._rows):
            return
        cap = max(need, 2 * len(self._rows), 1024)
        rows = np.zeros((cap, self.row_width), dtype=np.uint64)
        rows[:self._n] = self._rows[:self._n]
        self._rows = rows
        sums = np.zeros(cap, dtype=np.uint64)
        sums[:self._n] = self._sums[:self._n]
        self._sums = sums

    # -- building -------------------------------------------------------
    def fit(self, table: Sequence[Entity]) -> "_BandedNNIndex":
        self._reset()
        self._extend(list(table))
        return self

    def add(self, record: Entity) -> int:
        self._extend([record])
        return self._n - 1

    def add_many(self, records: Sequence[Entity]) -> None:
        """Streaming bulk ``add`` (the 1M-record build path)."""
        self._extend(list(records))

    def _extend(self, entities: List[Entity]) -> None:
        for start in range(0, len(entities), _CHUNK):
            chunk = entities[start:start + _CHUNK]
            rows = self._row_batch(chunk)
            bands = self._band_values(rows)
            self._ensure_capacity(len(chunk))
            base = self._n
            self._rows[base:base + len(chunk)] = rows
            # uint64 row checksum (wrapping sum): the cheap read-side
            # integrity check the corrupt-fault recovery test relies on.
            self._sums[base:base + len(chunk)] = rows.sum(
                axis=1, dtype=np.uint64)
            for i, entity in enumerate(chunk):
                record_id = base + i
                for band in range(self.bands):
                    key = (band, int(bands[i, band]))
                    self._buckets.setdefault(key, []).append(record_id)
                self._uids.append(entity.uid)
            if self._records is not None:
                self._records.extend(chunk)
            self._n += len(chunk)

    # -- querying -------------------------------------------------------
    def candidates(self, record: Entity, k: int = 16) -> List[int]:
        if k <= 0:
            raise ValueError("k must be >= 1")
        qrow = self._row_batch([record])[0]
        kind = fault_point("blocking.index", op="query", size=self._n)
        if kind == "corrupt":
            # Contract of the ``corrupt`` kind: the call site mangles its
            # own data so the *reader-side* detection path is exercised.
            if self._n:
                self._rows[:self._n] ^= _CORRUPT_MASK
        try:
            return self._query(qrow, record.uid, k)
        except CorruptDataFault:
            self._rebuild()
            return self._query(qrow, record.uid, k)

    def _query(self, qrow: np.ndarray, uid: str, k: int) -> List[int]:
        if self._n == 0:
            return []
        qbands = self._band_values(qrow[None, :])[0]
        collided: List[List[int]] = []
        for band in range(self.bands):
            ids = self._buckets.get((band, int(qbands[band])))
            if ids:
                collided.append(ids)
        if not collided:
            return []
        ids_arr = np.unique(np.concatenate(
            [np.asarray(ids, dtype=np.int64) for ids in collided]))
        keep_mask = np.fromiter(
            (self._uids[int(j)] != uid for j in ids_arr),
            dtype=bool, count=len(ids_arr))
        ids_arr = ids_arr[keep_mask]
        if not len(ids_arr):
            return []
        rows = self._rows[ids_arr]
        if not np.array_equal(rows.sum(axis=1, dtype=np.uint64),
                              self._sums[ids_arr]):
            raise CorruptDataFault(
                f"{type(self).__name__}: signature-row checksum mismatch "
                f"(index corrupt); rebuilding from retained records")
        if len(ids_arr) > k:
            sims = self._similarity(rows, qrow)
            # Membership of the top-k set is decided by (similarity desc,
            # index asc); emission is sorted by index (R001).
            order = np.lexsort((ids_arr, -sims))
            ids_arr = np.sort(ids_arr[order[:k]])
        return [int(j) for j in ids_arr]

    # -- recovery -------------------------------------------------------
    def _rebuild(self) -> None:
        if self._records is None:
            raise CorruptDataFault(
                f"{type(self).__name__}: index corrupt and records were not "
                f"retained (keep_records=False); re-fit from source data")
        retained = list(self._records)
        self.fit(retained)
        COUNTERS.increment("blocking_index_rebuilds")


class MinHashLSHBlocker(_BandedNNIndex):
    """MinHash signatures over token shingles, banded into LSH buckets.

    ``num_perm`` hash permutations are simulated with seeded multiply-shift
    universal hashing over stable 64-bit token hashes; signatures are banded
    into ``bands`` bands of ``num_perm // bands`` rows.  Candidates are
    records sharing at least one band bucket, ranked by estimated Jaccard
    similarity (fraction of agreeing signature components).

    Parameter guidance (see docs/BLOCKING.md): more bands → higher recall
    at lower precision; :meth:`collision_probability` gives the exact
    retrieval curve for a target Jaccard similarity.
    """

    name = "lsh"

    def __init__(self, seed: int = 0, num_perm: int = 32, bands: int = 16,
                 char_ngrams: Optional[int] = None, keep_records: bool = True):
        if num_perm < 1 or bands < 1 or num_perm % bands:
            raise ValueError("num_perm must be a positive multiple of bands")
        if char_ngrams is not None and char_ngrams < 1:
            raise ValueError("char_ngrams must be >= 1")
        self.num_perm = int(num_perm)
        self.rows_per_band = int(num_perm // bands)
        self.char_ngrams = char_ngrams
        self.row_width = self.num_perm
        rng = np.random.default_rng(seed)
        # Odd multipliers < 2^63 and additive offsets for multiply-shift.
        self._mult = rng.integers(1, 1 << 62, size=num_perm,
                                  dtype=np.uint64) * np.uint64(2) + np.uint64(1)
        self._offset = rng.integers(0, 1 << 62, size=num_perm, dtype=np.uint64)
        super().__init__(seed=seed, bands=bands, keep_records=keep_records)

    def collision_probability(self, similarity: float) -> float:
        """P(bucket collision) at Jaccard similarity ``similarity``."""
        return collision_probability(similarity, self.rows_per_band, self.bands)

    # -- signatures -----------------------------------------------------
    def _shingle_hashes(self, entity: Entity) -> np.ndarray:
        text = entity.text()
        if self.char_ngrams is None:
            shingles = set(tokenize(text))
        else:
            joined = " ".join(tokenize(text))
            n = self.char_ngrams
            shingles = {joined[i:i + n] for i in range(max(len(joined) - n + 1, 0))}
        if not shingles:
            return np.zeros(0, dtype=np.uint64)
        return np.array([token_hash(s) for s in sorted(shingles)],
                        dtype=np.uint64)

    def _row_batch(self, entities: Sequence[Entity]) -> np.ndarray:
        hash_arrays = [self._shingle_hashes(e) for e in entities]
        lengths = np.array([len(h) for h in hash_arrays], dtype=np.int64)
        starts = np.zeros(len(entities), dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        if lengths.sum() == 0:
            return np.full((len(entities), self.num_perm), _EMPTY_SIG,
                           dtype=np.uint64)
        concat = np.concatenate([h for h in hash_arrays if len(h)])
        # (T, P) multiply-shift values; uint64 arithmetic wraps mod 2^64.
        vals = (concat[:, None] * self._mult[None, :]
                + self._offset[None, :]) >> np.uint64(33)
        # Sentinel row of uint64-max so the trailing reduceat segment and
        # zero-length segments never contribute a real minimum.
        vals = np.concatenate(
            [vals, np.full((1, self.num_perm), np.iinfo(np.uint64).max,
                           dtype=np.uint64)])
        sigs = np.minimum.reduceat(vals, starts, axis=0)
        sigs[lengths == 0] = _EMPTY_SIG
        return sigs

    def _band_values(self, rows: np.ndarray) -> np.ndarray:
        r = self.rows_per_band
        chunks = rows.reshape(len(rows), self.bands, r)
        folded = np.broadcast_to(_FNV_OFFSET, (len(rows), self.bands)).copy()
        for i in range(r):
            folded = (folded ^ chunks[:, :, i]) * _FNV_PRIME
        return folded

    def _similarity(self, rows: np.ndarray, qrow: np.ndarray) -> np.ndarray:
        return (rows == qrow[None, :]).mean(axis=1)


class RandomProjectionBlocker(_BandedNNIndex):
    """Signed random-projection (SimHash) index with bit-band buckets.

    Each record becomes a ``planes``-bit code: the signs of its embedding
    projected onto seeded random hyperplanes.  By default the embedding is
    a feature-hashed log-TF token vector — each token contributes a
    deterministic per-token Gaussian direction, which makes a record's code
    independent of the rest of the corpus (the property that buys bitwise
    ``add == rebuild`` parity).  Pass ``embed_fn`` to project dense record
    embeddings instead (e.g. frozen-LM vectors from the embedding store);
    ``embed_fn`` must be a pure function of the record, and its outputs are
    memoized in the ``blocking`` LRU keyed on ``params_version()`` (R005) so
    a weight reload can never serve stale projections.

    Codes are banded into ``bands`` groups of ``planes // bands`` bits
    (classic hyperplane LSH); collided candidates are ranked by Hamming
    distance.
    """

    name = "rp"

    def __init__(self, seed: int = 0, planes: int = 64, bands: int = 8,
                 embed_fn: Optional[Callable[[Entity], np.ndarray]] = None,
                 keep_records: bool = True):
        if planes < 1 or bands < 1 or planes % bands:
            raise ValueError("planes must be a positive multiple of bands")
        self.planes = int(planes)
        self.bits_per_band = int(planes // bands)
        if self.bits_per_band > 63:
            raise ValueError("planes // bands must be <= 63 (band bucket "
                             "values are uint64)")
        self.embed_fn = embed_fn
        self._words = (self.planes + 63) // 64
        self.row_width = bands + self._words
        self._token_dirs: Dict[str, np.ndarray] = {}
        self._projection: Optional[np.ndarray] = None
        super().__init__(seed=seed, bands=bands, keep_records=keep_records)

    # -- embeddings -----------------------------------------------------
    def _token_direction(self, token: str) -> np.ndarray:
        direction = self._token_dirs.get(token)
        if direction is None:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, token_hash(token)]))
            direction = rng.standard_normal(self.planes)
            self._token_dirs[token] = direction
        return direction

    def _vector(self, entity: Entity) -> np.ndarray:
        if self.embed_fn is not None:
            key = ("blocking.embed", self.seed, entity.uid, entity.text(),
                   params_version())
            embedded = get_cache("blocking").get_or_compute(
                key, lambda: np.asarray(self.embed_fn(entity),
                                        dtype=np.float64).ravel())
            if self._projection is None:
                rng = np.random.default_rng(
                    np.random.SeedSequence([self.seed, len(embedded)]))
                self._projection = rng.standard_normal(
                    (len(embedded), self.planes))
            if len(embedded) != len(self._projection):
                raise ValueError(
                    f"embed_fn dimension changed: got {len(embedded)}, "
                    f"projection is {len(self._projection)}")
            return embedded @ self._projection
        counts: Dict[str, int] = {}
        for token in tokenize(entity.text()):
            counts[token] = counts.get(token, 0) + 1
        vector = np.zeros(self.planes)
        for token in sorted(counts):
            vector = vector + (1.0 + math.log(counts[token])) \
                * self._token_direction(token)
        return vector

    # -- signatures -----------------------------------------------------
    def _row_batch(self, entities: Sequence[Entity]) -> np.ndarray:
        rows = np.zeros((len(entities), self.row_width), dtype=np.uint64)
        r = self.bits_per_band
        band_pow = np.left_shift(np.uint64(1), np.arange(r, dtype=np.uint64))
        word_pow = np.left_shift(np.uint64(1), np.arange(64, dtype=np.uint64))
        for i, entity in enumerate(entities):
            bits = (self._vector(entity) >= 0.0).astype(np.uint64)
            bands = bits.reshape(self.bands, r)
            rows[i, :self.bands] = (bands * band_pow[None, :]).sum(
                axis=1, dtype=np.uint64)
            padded = np.zeros(self._words * 64, dtype=np.uint64)
            padded[:self.planes] = bits
            words = padded.reshape(self._words, 64)
            rows[i, self.bands:] = (words * word_pow[None, :]).sum(
                axis=1, dtype=np.uint64)
        return rows

    def _band_values(self, rows: np.ndarray) -> np.ndarray:
        return rows[:, :self.bands]

    def _similarity(self, rows: np.ndarray, qrow: np.ndarray) -> np.ndarray:
        hamming = np.bitwise_count(
            rows[:, self.bands:] ^ qrow[None, self.bands:]).sum(axis=1)
        return (self.planes - hamming).astype(np.float64)
