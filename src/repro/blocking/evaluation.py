"""Blocker quality evaluation: reduction ratio and pairs completeness.

The classic trade-off every ER survey reports: a blocker must prune the
cross product (reduction ratio, RR) without losing true matches (pairs
completeness, PC — the paper's "a reduced set of candidate entities that
contain most of the matching entities").
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence, Set, Tuple

from repro.data.schema import Entity


@dataclasses.dataclass(frozen=True)
class BlockerQuality:
    """Reduction ratio / pairs completeness / their harmonic mean."""

    reduction_ratio: float
    pairs_completeness: float
    num_candidates: int
    num_true_matches: int

    @property
    def harmonic_mean(self) -> float:
        rr, pc = self.reduction_ratio, self.pairs_completeness
        return 2 * rr * pc / (rr + pc) if rr + pc else 0.0

    def __str__(self) -> str:
        return (f"RR={self.reduction_ratio:.3f} PC={self.pairs_completeness:.3f} "
                f"HM={self.harmonic_mean:.3f}")


def evaluate_blocker(
    candidates: Iterable[Tuple[int, int]],
    true_matches: Iterable[Tuple[int, int]],
    table_sizes: Tuple[int, int],
) -> BlockerQuality:
    """Score a candidate set against ground truth."""
    candidate_set: Set[Tuple[int, int]] = set(candidates)
    truth = set(true_matches)
    total = table_sizes[0] * table_sizes[1]
    rr = 1.0 - len(candidate_set) / total if total else 0.0
    pc = (len(candidate_set & truth) / len(truth)) if truth else 1.0
    return BlockerQuality(
        reduction_ratio=rr,
        pairs_completeness=pc,
        num_candidates=len(candidate_set),
        num_true_matches=len(truth),
    )


def tfidf_candidates(table_a: Sequence[Entity], table_b: Sequence[Entity],
                     top_n: int = 16) -> list:
    """TF-IDF top-N retrieval as index pairs (the collective blocker)."""
    from repro.blocking.tfidf import TfidfIndex

    index = TfidfIndex(list(table_b))
    out = []
    for i, query in enumerate(table_a):
        for j, _ in index.query(query, top_n=top_n, exclude_uid=False):
            out.append((i, j))
    return out
