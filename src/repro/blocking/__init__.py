"""Blocking: cheap candidate filtering before matching (Section 2.1, 6.3).

Four blockers are provided behind the shared :class:`Blocker` interface
(see ``docs/BLOCKING.md``):

* :func:`overlap_blocker` / :class:`OverlapBlocker` — keyword/word-overlap
  filtering (Magellan style), used to prune obviously-unmatching pairs for
  the pairwise pipeline.
* :class:`TfidfIndex` / :class:`TfidfBlocker` — TF-IDF cosine top-N
  retrieval, used to build the collective-ER candidate sets (top-16 per
  query entity, Section 6.3).
* :class:`MinHashLSHBlocker` — MinHash/LSH banding over token shingles;
  streaming builds, O(1)-amortized incremental ``add``.
* :class:`RandomProjectionBlocker` — signed random projection (SimHash)
  over hashed token vectors or caller-supplied embeddings.

:func:`candidate_pairs` adapts any blocker to the cross-table ``(i, j)``
pair-list shape the pipeline consumes; :func:`evaluate_blocker` scores a
pair list for pairs-completeness / reduction ratio.
"""

from repro.blocking.ann import (MinHashLSHBlocker, RandomProjectionBlocker,
                                collision_probability)
from repro.blocking.base import Blocker, candidate_pairs
from repro.blocking.evaluation import BlockerQuality, evaluate_blocker
from repro.blocking.keyword import (OverlapBlocker, overlap_blocker,
                                    shared_token_count)
from repro.blocking.tfidf import TfidfBlocker, TfidfIndex

__all__ = [
    "Blocker",
    "BlockerQuality",
    "MinHashLSHBlocker",
    "OverlapBlocker",
    "RandomProjectionBlocker",
    "TfidfBlocker",
    "TfidfIndex",
    "candidate_pairs",
    "collision_probability",
    "evaluate_blocker",
    "overlap_blocker",
    "shared_token_count",
]
