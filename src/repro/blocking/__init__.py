"""Blocking: cheap candidate filtering before matching (Section 2.1, 6.3).

Two blockers are provided, matching the paper's two pipelines:

* :func:`overlap_blocker` — keyword/word-overlap filtering (Magellan style),
  used to prune obviously-unmatching pairs for the pairwise pipeline.
* :class:`TfidfIndex` — TF-IDF cosine top-N retrieval, used to build the
  collective-ER candidate sets (top-16 per query entity, Section 6.3).
"""

from repro.blocking.keyword import overlap_blocker, shared_token_count
from repro.blocking.tfidf import TfidfIndex

__all__ = ["overlap_blocker", "shared_token_count", "TfidfIndex"]
