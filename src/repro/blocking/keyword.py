"""Word-overlap blocking (the paper's "key-word filtering", citing Magellan)."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.data.schema import Entity
from repro.text.tokenizer import tokenize


def shared_token_count(left: Entity, right: Entity) -> int:
    """Number of distinct tokens the two entities share."""
    return len(set(tokenize(left.text())) & set(tokenize(right.text())))


def overlap_blocker(
    table_a: Sequence[Entity],
    table_b: Sequence[Entity],
    min_shared_tokens: int = 1,
) -> List[Tuple[int, int]]:
    """Return index pairs (i, j) whose records share ≥ ``min_shared_tokens``.

    Uses an inverted index over tokens, so complexity is proportional to the
    number of actual collisions rather than |A|×|B|.
    """
    if min_shared_tokens < 1:
        raise ValueError("min_shared_tokens must be >= 1")
    # Token sets are sorted before iteration: str hashes are salted per
    # process, so raw set order would reorder the candidate list from run to
    # run (R001) even though its *contents* are identical.
    index: dict = {}
    for j, entity in enumerate(table_b):
        for token in sorted(set(tokenize(entity.text()))):
            index.setdefault(token, []).append(j)

    candidates: List[Tuple[int, int]] = []
    for i, entity in enumerate(table_a):
        counts: dict = {}
        for token in sorted(set(tokenize(entity.text()))):
            for j in index.get(token, ()):
                counts[j] = counts.get(j, 0) + 1
        for j, c in counts.items():
            if c >= min_shared_tokens:
                candidates.append((i, j))
    return candidates


def block_recall(
    candidates: Iterable[Tuple[int, int]],
    true_matches: Iterable[Tuple[int, int]],
) -> float:
    """Fraction of true matches surviving blocking (the metric that matters)."""
    cand = set(candidates)
    truth = list(true_matches)
    if not truth:
        return 1.0
    return sum(1 for t in truth if t in cand) / len(truth)
