"""Word-overlap blocking (the paper's "key-word filtering", citing Magellan)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.blocking.base import Blocker
from repro.data.schema import Entity
from repro.text.tokenizer import tokenize


def shared_token_count(left: Entity, right: Entity) -> int:
    """Number of distinct tokens the two entities share."""
    return len(set(tokenize(left.text())) & set(tokenize(right.text())))


def overlap_blocker(
    table_a: Sequence[Entity],
    table_b: Sequence[Entity],
    min_shared_tokens: int = 1,
) -> List[Tuple[int, int]]:
    """Return index pairs (i, j) whose records share ≥ ``min_shared_tokens``.

    Uses an inverted index over tokens, so complexity is proportional to the
    number of actual collisions rather than |A|×|B|.
    """
    if min_shared_tokens < 1:
        raise ValueError("min_shared_tokens must be >= 1")
    # Token sets are sorted before iteration: str hashes are salted per
    # process, so raw set order would reorder the candidate list from run to
    # run (R001) even though its *contents* are identical.
    index: dict = {}
    for j, entity in enumerate(table_b):
        for token in sorted(set(tokenize(entity.text()))):
            index.setdefault(token, []).append(j)

    candidates: List[Tuple[int, int]] = []
    for i, entity in enumerate(table_a):
        counts: dict = {}
        for token in sorted(set(tokenize(entity.text()))):
            for j in index.get(token, ()):
                counts[j] = counts.get(j, 0) + 1
        for j, c in counts.items():
            if c >= min_shared_tokens:
                candidates.append((i, j))
    return candidates


class OverlapBlocker(Blocker):
    """:class:`~repro.blocking.base.Blocker` over the token inverted index.

    Candidates are indexed records sharing ≥ ``min_shared_tokens`` distinct
    tokens with the query; when more than ``k`` qualify, membership of the
    returned set is decided by (shared-token count desc, index asc).
    """

    name = "overlap"

    def __init__(self, min_shared_tokens: int = 1):
        if min_shared_tokens < 1:
            raise ValueError("min_shared_tokens must be >= 1")
        self.min_shared_tokens = min_shared_tokens
        self._records: List[Entity] = []
        self._index: Dict[str, List[int]] = {}

    @property
    def records(self) -> Sequence[Entity]:
        return self._records

    def fit(self, table: Sequence[Entity]) -> "OverlapBlocker":
        self._records = []
        self._index = {}
        for entity in table:
            self.add(entity)
        return self

    def add(self, record: Entity) -> int:
        j = len(self._records)
        self._records.append(record)
        for token in sorted(set(tokenize(record.text()))):
            self._index.setdefault(token, []).append(j)
        return j

    def candidates(self, record: Entity, k: int = 16) -> List[int]:
        if k <= 0:
            raise ValueError("k must be >= 1")
        counts: Dict[int, int] = {}
        for token in sorted(set(tokenize(record.text()))):
            for j in self._index.get(token, ()):
                counts[j] = counts.get(j, 0) + 1
        eligible = [j for j, c in counts.items()
                    if c >= self.min_shared_tokens
                    and self._records[j].uid != record.uid]
        if len(eligible) > k:
            eligible = sorted(eligible, key=lambda j: (-counts[j], j))[:k]
        return sorted(eligible)


def block_recall(
    candidates: Iterable[Tuple[int, int]],
    true_matches: Iterable[Tuple[int, int]],
) -> float:
    """Fraction of true matches surviving blocking (the metric that matters)."""
    cand = set(candidates)
    truth = list(true_matches)
    if not truth:
        return 1.0
    return sum(1 for t in truth if t in cand) / len(truth)
