"""The ``Blocker`` interface: the pipeline/serving swap point for blocking.

Every blocker — the classic keyword-overlap and TF-IDF baselines as well as
the ANN indexes in :mod:`repro.blocking.ann` — implements the same three
operations:

* ``fit(table)`` — (re)build the index over a table of records,
* ``candidates(record, k)`` — up to ``k`` likely-matching indexed records,
* ``add(record)`` — append one record to the index *incrementally*, for
  online blocking in the serving layer.

Contracts, enforced by the shared conformance suite
(``tests/test_blocking_contract.py``):

* **Determinism** — two fresh builds with the same seed over the same table
  answer every query identically (R001: no hidden RNG, no hash-salted
  iteration order).
* **Sorted emission** — ``candidates`` returns strictly increasing indices
  with no duplicates; ranking decides *membership* of the top-``k`` set,
  index order decides *emission* order.
* **No self-pairs** — a record already in the index is never its own
  candidate (matched by ``uid``).
* **Incremental-add parity** — ``add(record)`` followed by any query is
  bitwise-equivalent to rebuilding the index with the record included.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # annotation-only: repro.data.collective imports this
    from repro.data.schema import Entity  # package via blocking.tfidf.


class Blocker(abc.ABC):
    """Candidate generation over one indexed table of records."""

    #: Short name used in benchmark output and conformance-test ids.
    name: str = "blocker"

    @abc.abstractmethod
    def fit(self, table: Sequence[Entity]) -> "Blocker":
        """(Re)build the index over ``table``; returns ``self``."""

    @abc.abstractmethod
    def candidates(self, record: Entity, k: int = 16) -> List[int]:
        """Indices of up to ``k`` likely matches, strictly increasing.

        Records whose ``uid`` equals ``record.uid`` are excluded, so a
        query with an indexed record never yields a self-pair.
        """

    @abc.abstractmethod
    def add(self, record: Entity) -> int:
        """Incrementally index ``record``; returns its index.

        Must be exactly equivalent to rebuilding the index with ``record``
        appended to the fitted table (bitwise candidate-set parity).
        """

    @property
    @abc.abstractmethod
    def records(self) -> Sequence[Entity]:
        """The indexed records, in index order."""

    def __len__(self) -> int:
        return len(self.records)


def candidate_pairs(
    blocker: Blocker,
    table_a: Sequence[Entity],
    table_b: Optional[Sequence[Entity]] = None,
    k: int = 16,
) -> List[Tuple[int, int]]:
    """Cross-table blocking: ``(i, j)`` index pairs via ``blocker``.

    When ``table_b`` is given the blocker is (re)fitted over it; otherwise
    the blocker's existing index is queried.  Pairs come out sorted by
    ``(i, j)`` — ``candidates`` already emits sorted ``j`` per query.
    """
    if table_b is not None:
        blocker.fit(table_b)
    out: List[Tuple[int, int]] = []
    for i, record in enumerate(table_a):
        for j in blocker.candidates(record, k=k):
            out.append((i, j))
    return out
