#!/usr/bin/env python3
"""Label efficiency on the WDC product corpus (Figure 10).

Run:  python examples/label_efficiency.py [--domain computer] [--fast]

The paper's Figure 10 shows HierGAT needing far fewer labels: with 1/24 of
the training samples it matches DeepMatcher trained on everything.  This
example sweeps the WDC training-size ladder against a fixed test set and
prints the resulting F1 curves.
"""

import argparse

from repro.config import Scale, set_scale
from repro.core import HierGAT
from repro.data import load_wdc
from repro.data.wdc import WDC_SIZES
from repro.matchers import DeepMatcherModel, DittoModel
from repro.matchers.base import evaluate_matcher


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domain", default="computer",
                        choices=["computer", "camera", "watch", "shoe", "all"])
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()
    set_scale(Scale.ci() if args.fast else Scale.bench())

    models = {"DM": DeepMatcherModel, "Ditto": DittoModel, "HG": HierGAT}
    print(f"{'size':8s} {'#train':>7s} " + " ".join(f"{n:>7s}" for n in models))
    for size in WDC_SIZES:
        dataset = load_wdc(args.domain, size=size)
        row = [f"{size:8s}", f"{len(dataset.split.train):7d}"]
        for factory in models.values():
            row.append(f"{evaluate_matcher(factory(), dataset):7.1f}")
        print(" ".join(row))
    print("\nExpected shape (paper): the HG column dominates at 'small' and the "
          "gap narrows as labels grow.")


if __name__ == "__main__":
    main()
