#!/usr/bin/env python3
"""Explain decisions and deploy a trained matcher (production workflow).

Run:  python examples/explain_and_deploy.py [--fast]

Shows the library's adoption path beyond benchmarks: train HierGAT once,
inspect *why* it matches (attention-based explanations), save the model to a
single .npz, reload it in a fresh "service", and resolve two raw tables into
a matching matrix with the Figure 5 pipeline.
"""

import argparse
import tempfile
from pathlib import Path

from repro.config import Scale, set_scale
from repro.core import HierGAT
from repro.core.explanations import explain
from repro.data import load_dataset
from repro.persistence import load_matcher, save_matcher
from repro.pipeline import ERPipeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()
    set_scale(Scale.ci() if args.fast else Scale.bench())

    dataset = load_dataset("Walmart-Amazon")
    print(dataset.summary())
    matcher = HierGAT()
    matcher.fit(dataset)
    print(f"trained: test F1 = {matcher.test_f1(dataset):.1f}\n")

    print("--- why did the model decide this? ---")
    print(explain(matcher, dataset.split.test[0]).render())

    with tempfile.TemporaryDirectory() as tmp:
        path = save_matcher(matcher, Path(tmp) / "hiergat.npz")
        print(f"\nsaved model to {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB)")
        service_matcher = load_matcher(path)
        print("reloaded in a fresh process-like context")

    print("\n--- resolving two raw tables (Figure 5 pipeline) ---")
    table_a = [p.left for p in dataset.split.test[:8]]
    table_b = [p.right for p in dataset.split.test[:8]]
    pipeline = ERPipeline(matcher=service_matcher, min_shared_tokens=1)
    pipeline._fitted = True  # matcher arrived pre-trained
    result = pipeline.resolve_one_to_one(table_a, table_b)
    print(f"blocking avoided {result.num_comparisons_avoided} of "
          f"{len(table_a) * len(table_b)} comparisons; "
          f"{result.num_candidates} candidates scored")
    for i, j in result.matches:
        print(f"  matched A[{i}] ↔ B[{j}]  "
              f"(score {result.scores[(i, j)]:.3f}): {table_a[i].text()[:45]}")


if __name__ == "__main__":
    main()
