#!/usr/bin/env python3
"""Quickstart: train HierGAT on a benchmark dataset and match two records.

Run:  python examples/quickstart.py [--dataset Fodors-Zagats] [--fast]

Walks the full pipeline of the paper's Figure 5: load (synthetic) benchmark
data, train the pairwise HierGAT model, evaluate F1 on the held-out test
split, and use the trained matcher on a fresh pair of records.
"""

import argparse

from repro.config import Scale, set_scale
from repro.core import HierGAT
from repro.data import load_dataset
from repro.data.schema import Entity, EntityPair


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="Fodors-Zagats",
                        help="Magellan benchmark name (e.g. Amazon-Google, Beer)")
    parser.add_argument("--fast", action="store_true",
                        help="tiny scale: seconds instead of minutes")
    args = parser.parse_args()

    set_scale(Scale.ci() if args.fast else Scale.bench())

    print(f"Loading {args.dataset} ...")
    dataset = load_dataset(args.dataset)
    print(" ", dataset.summary())

    print("Training HierGAT (first run also builds the pre-trained checkpoint) ...")
    matcher = HierGAT()
    matcher.fit(dataset)
    result = matcher.evaluate(dataset.split.test)
    print(f"  test precision={result.precision:.3f} recall={result.recall:.3f} "
          f"F1={result.f1 * 100:.1f}")

    # Use the trained matcher on records you bring yourself.
    left = dataset.split.test[0].left
    right = dataset.split.test[0].right
    pair = EntityPair(left=left, right=right, label=dataset.split.test[0].label)
    score = matcher.scores([pair])[0]
    print("\nMatching a fresh record pair:")
    print(f"  left : {dict(left.attributes)}")
    print(f"  right: {dict(right.attributes)}")
    print(f"  match probability = {score:.3f}  (threshold {matcher.threshold:.2f}) "
          f"-> {'MATCH' if score >= matcher.threshold else 'NON-MATCH'}")
    print(f"  ground truth: {'MATCH' if pair.label else 'NON-MATCH'}")


if __name__ == "__main__":
    main()
