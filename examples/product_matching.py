#!/usr/bin/env python3
"""Product matching across two shops — the paper's Figure 1 scenario.

Run:  python examples/product_matching.py [--fast]

Builds an Amazon-Google-style software catalog (hard same-brand negatives
that differ only in discriminative edition words like "big data" / "cluster"),
compares all four pairwise models of Table 4, and prints HierGAT's attention
so you can see it picking out the discriminative words (Figure 9).
"""

import argparse

from repro.config import Scale, set_scale
from repro.core import HierGAT
from repro.core.attention_viz import attention_report
from repro.data import load_dataset
from repro.matchers import DeepMatcherModel, DittoModel, MagellanMatcher
from repro.matchers.base import evaluate_matcher


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()
    set_scale(Scale.ci() if args.fast else Scale.bench())

    dataset = load_dataset("Amazon-Google")
    print(dataset.summary())
    hard_negative = next(p for p in dataset.pairs if p.label == 0
                         and p.left.value("manufacturer") == p.right.value("manufacturer"))
    print("\nA Figure-1-style hard negative (same brand, different edition):")
    print("  A:", dict(hard_negative.left.attributes))
    print("  B:", dict(hard_negative.right.attributes))

    print("\nTraining the Table 4 line-up ...")
    models = [MagellanMatcher(), DeepMatcherModel(), DittoModel(), HierGAT()]
    results = {}
    for model in models:
        results[model.name] = evaluate_matcher(model, dataset)
        print(f"  {model.name:12s} F1 = {results[model.name]:5.1f}")
    hiergat = models[-1]

    print("\nHierGAT attention on test pairs (Figure 9):")
    for report in attention_report(hiergat, dataset.split.test[:3]):
        print(f"  {report.pair_id}: truth={report.label:9s} pred={report.prediction:9s}")
        print(f"    top tokens   : {report.top_tokens}")
        print(f"    top attribute: {report.top_attribute}")


if __name__ == "__main__":
    main()
