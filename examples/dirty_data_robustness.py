#!/usr/bin/env python3
"""Dirty-data robustness (Table 4's dirty block).

Run:  python examples/dirty_data_robustness.py [--fast]

DeepMatcher's dirty benchmark corrupts entity structure by injecting attribute
values into other attributes (the title may suddenly contain the price).  The
paper's claim: HierGAT drops only ~1 F1 point on dirty data while feature-based
Magellan collapses.  This example reproduces that contrast on one dataset.
"""

import argparse

from repro.config import Scale, set_scale
from repro.core import HierGAT
from repro.data import load_dataset
from repro.matchers import MagellanMatcher
from repro.matchers.base import evaluate_matcher


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="Walmart-Amazon",
                        help="one of the dirty-capable datasets (I-A, D-A, D-S, W-A)")
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()
    set_scale(Scale.ci() if args.fast else Scale.bench())

    clean = load_dataset(args.dataset, dirty=False)
    dirty = load_dataset(args.dataset, dirty=True)

    example = dirty.pairs[0].left
    print("A structure-corrupted record (values migrated between attributes):")
    print(" ", dict(example.attributes))

    print(f"\n{'model':12s} {'clean F1':>9s} {'dirty F1':>9s} {'drop':>6s}")
    for factory in (MagellanMatcher, HierGAT):
        clean_f1 = evaluate_matcher(factory(), clean)
        dirty_f1 = evaluate_matcher(factory(), dirty)
        name = factory().name
        print(f"{name:12s} {clean_f1:9.1f} {dirty_f1:9.1f} {clean_f1 - dirty_f1:6.1f}")
    print("\nExpected shape (paper): Magellan drops hard; HierGAT barely moves.")


if __name__ == "__main__":
    main()
