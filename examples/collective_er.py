#!/usr/bin/env python3
"""Collective entity resolution with HierGAT+ (Section 6.3).

Run:  python examples/collective_er.py [--dataset Amazon-Google|camera|monitor] [--fast]

Builds a collective benchmark the paper's way — split query entities 3:1:1
FIRST, then block each part with TF-IDF cosine top-N — and trains HierGAT+,
which scores a query against its whole candidate set in one hierarchical
heterogeneous graph, using entity-level context and the alignment layer.
A pairwise HierGAT on the flattened pairs serves as the comparison point.
"""

import argparse

from repro.config import Scale, get_scale, set_scale
from repro.core import HierGAT, HierGATPlus
from repro.harness.collective import collective_as_pairdataset, load_collective_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="Amazon-Google",
                        help="Magellan name with raw tables, or DI2KG: camera / monitor")
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()
    set_scale(Scale.ci() if args.fast else Scale.bench())

    dataset = load_collective_dataset(args.dataset, get_scale())
    print(dataset.summary())
    example = dataset.test[0]
    print(f"\nQuery: {example.query.text()[:70]}")
    for candidate, label in zip(example.candidates[:4], example.labels[:4]):
        print(f"  [{'+' if label else ' '}] {candidate.text()[:70]}")

    print("\nTraining pairwise HierGAT on the flattened pairs ...")
    flat = collective_as_pairdataset(dataset)
    pairwise = HierGAT()
    pairwise.fit(flat)
    print(f"  HierGAT  (pairwise)   F1 = {pairwise.test_f1(flat):5.1f}")

    print("Training collective HierGAT+ (entity context + alignment) ...")
    collective = HierGATPlus()
    collective.fit(dataset)
    print(f"  HierGAT+ (collective) F1 = {collective.test_f1_collective(dataset):5.1f}")

    scores = collective._group_scores(example)
    print("\nHierGAT+ candidate scores for the example query:")
    for candidate, label, score in zip(example.candidates[:4], example.labels[:4], scores[:4]):
        print(f"  score={score:.3f} truth={'match' if label else 'no'}  {candidate.text()[:55]}")


if __name__ == "__main__":
    main()
